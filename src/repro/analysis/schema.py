"""The schema catalog every walker validates against.

Canonical model
---------------
*Entities* are the eight SNB vertex kinds (``person``, ``forum``,
``post``, ``comment``, ``tag``, ``tagclass``, ``place``,
``organisation``); their property names and types are **derived from the
dataclasses in** :mod:`repro.snb.schema` (snake_case fields become the
camelCase property names the graph dialects use; fields that encode
edges are excluded).  *Relationships* are the sixteen SNB edge kinds
with their endpoint entity sets and edge properties.

The LDBC "message" notion (posts and comments share an id space and the
``Message`` label / ``snb:content`` predicate) is modelled as the entity
*set* ``{post, comment}`` rather than a ninth entity, so footprints stay
comparable across dialects that do and do not materialize the union.

Per-dialect mappings translate dialect-local element names (Cypher
labels, SQL tables/columns, SPARQL predicates, Gremlin labels) into this
canonical vocabulary.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache

from repro.snb import schema as snb

#: the post/comment union ("Message" in Cypher, ``snb:content`` bearers)
MESSAGE: frozenset[str] = frozenset({"post", "comment"})

#: dataclass fields that encode edges, not properties (per entity)
_EDGE_FIELDS: dict[str, set[str]] = {
    "person": {"city", "interests", "university", "class_year",
               "company", "work_from"},
    "forum": {"moderator", "tags"},
    "post": {"creator", "forum", "country", "tags"},
    "comment": {"creator", "reply_of", "root_post", "country", "tags"},
    "tag": {"tag_class"},
    "tagclass": {"subclass_of"},
    "place": {"part_of"},
    "organisation": {"place"},
}

#: snake_case -> property-name exceptions (the rest auto-camelCase)
_RENAMES = {
    "location_ip": "locationIP",
    "emails": "email",
    "kind": "type",
}

_ENTITY_CLASSES: dict[str, type] = {
    "person": snb.Person,
    "forum": snb.Forum,
    "post": snb.Post,
    "comment": snb.Comment,
    "tag": snb.Tag,
    "tagclass": snb.TagClass,
    "place": snb.Place,
    "organisation": snb.Organisation,
}


def _camel(name: str) -> str:
    if name in _RENAMES:
        return _RENAMES[name]
    head, *rest = name.split("_")
    return head + "".join(part.capitalize() for part in rest)


def _prop_type(annotation: str) -> str:
    if annotation.startswith("list"):
        return "list"
    if annotation.startswith("int"):
        return "int"
    return "str"


def _entity_props(name: str, cls: type) -> dict[str, str]:
    props: dict[str, str] = {}
    for field in dataclasses.fields(cls):
        if field.name in _EDGE_FIELDS[name]:
            continue
        props[_camel(field.name)] = _prop_type(str(field.type))
    return props


@dataclass(frozen=True)
class Relationship:
    """One edge kind: canonical name, endpoint entity sets, properties."""

    name: str
    src: frozenset[str]
    dst: frozenset[str]
    props: dict[str, str]


def _to_set(value: str | set[str]) -> frozenset[str]:
    return frozenset({value}) if isinstance(value, str) else frozenset(value)


def _rel(
    name: str,
    src: str | set[str],
    dst: str | set[str],
    props: dict[str, str] | None = None,
) -> Relationship:
    return Relationship(name, _to_set(src), _to_set(dst), props or {})


_RELATIONSHIPS = [
    _rel("knows", "person", "person", {"creationDate": "int"}),
    _rel("hasCreator", MESSAGE, "person"),
    _rel("containerOf", "forum", "post"),
    _rel("replyOf", "comment", MESSAGE),
    _rel("rootPost", "comment", "post"),
    _rel("likes", "person", MESSAGE, {"creationDate": "int"}),
    _rel("hasModerator", "forum", "person"),
    _rel("hasMember", "forum", "person", {"joinDate": "int"}),
    _rel("hasTag", {"forum", "post", "comment"}, "tag"),
    _rel("hasInterest", "person", "tag"),
    _rel("isLocatedIn", {"person", "post", "comment", "organisation"},
         "place"),
    _rel("isPartOf", "place", "place"),
    _rel("isSubclassOf", "tagclass", "tagclass"),
    _rel("hasType", "tag", "tagclass"),
    _rel("studyAt", "person", "organisation", {"classYear": "int"}),
    _rel("workAt", "person", "organisation", {"workFrom": "int"}),
]


# --- SQL mapping ----------------------------------------------------------------


@dataclass(frozen=True)
class SqlColumn:
    type: str  # int | str
    concept: str | None = None  # relationship a FK column encodes


@dataclass(frozen=True)
class SqlTable:
    """One table: the concept it materializes plus column details.

    ``concept`` is an entity for entity tables, a relationship for edge
    tables, and an entity for attribute side-tables (person_speaks).
    """

    concept: str
    columns: dict[str, SqlColumn]


def _cols(**kwargs: str | tuple[str, str]) -> dict[str, SqlColumn]:
    out = {}
    for name, spec in kwargs.items():
        if isinstance(spec, tuple):
            out[name] = SqlColumn(spec[0], spec[1])
        else:
            out[name] = SqlColumn(spec)
    return out


_SQL_TABLES: dict[str, SqlTable] = {
    "person": SqlTable("person", _cols(
        id="int", firstname="str", lastname="str", gender="str",
        birthday="int", creationdate="int", locationip="str",
        browserused="str", cityid=("int", "isLocatedIn"),
    )),
    "person_speaks": SqlTable("person", _cols(
        personid="int", language="str")),
    "person_email": SqlTable("person", _cols(personid="int", email="str")),
    "person_interest": SqlTable("hasInterest", _cols(
        personid="int", tagid="int")),
    "person_studyat": SqlTable("studyAt", _cols(
        personid="int", orgid="int", classyear="int")),
    "person_workat": SqlTable("workAt", _cols(
        personid="int", orgid="int", workfrom="int")),
    "knows": SqlTable("knows", _cols(
        p1="int", p2="int", creationdate="int")),
    "forum": SqlTable("forum", _cols(
        id="int", title="str", creationdate="int",
        moderatorid=("int", "hasModerator"),
    )),
    "forum_tag": SqlTable("hasTag", _cols(forumid="int", tagid="int")),
    "forum_member": SqlTable("hasMember", _cols(
        forumid="int", personid="int", joindate="int")),
    "post": SqlTable("post", _cols(
        id="int", creationdate="int", creatorid=("int", "hasCreator"),
        forumid=("int", "containerOf"), content="str", length="int",
        browserused="str", locationip="str", language="str",
        countryid=("int", "isLocatedIn"),
    )),
    "post_tag": SqlTable("hasTag", _cols(postid="int", tagid="int")),
    "comment": SqlTable("comment", _cols(
        id="int", creationdate="int", creatorid=("int", "hasCreator"),
        replyof=("int", "replyOf"), rootpost=("int", "rootPost"),
        content="str", length="int", browserused="str", locationip="str",
        countryid=("int", "isLocatedIn"),
    )),
    "comment_tag": SqlTable("hasTag", _cols(commentid="int", tagid="int")),
    "likes": SqlTable("likes", _cols(
        personid="int", messageid="int", creationdate="int")),
    "tag": SqlTable("tag", _cols(
        id="int", name="str", classid=("int", "hasType"))),
    "tagclass": SqlTable("tagclass", _cols(
        id="int", name="str", subclassof=("int", "isSubclassOf"))),
    "place": SqlTable("place", _cols(
        id="int", name="str", type="str", partof=("int", "isPartOf"))),
    "organisation": SqlTable("organisation", _cols(
        id="int", name="str", type="str",
        placeid=("int", "isLocatedIn"))),
}


# --- the catalog ----------------------------------------------------------------


class SchemaCatalog:
    """Labels, edge types, tables and property types for every dialect."""

    def __init__(self) -> None:
        self.entities: dict[str, dict[str, str]] = {
            name: _entity_props(name, cls)
            for name, cls in _ENTITY_CLASSES.items()
        }
        self.relationships: dict[str, Relationship] = {
            rel.name: rel for rel in _RELATIONSHIPS
        }
        self.sql_tables: dict[str, SqlTable] = dict(_SQL_TABLES)

        # Cypher labels: CamelCase entities plus the Message union label.
        self.cypher_labels: dict[str, frozenset[str]] = {
            "Person": frozenset({"person"}),
            "Forum": frozenset({"forum"}),
            "Post": frozenset({"post"}),
            "Comment": frozenset({"comment"}),
            "Message": MESSAGE,
            "Tag": frozenset({"tag"}),
            "TagClass": frozenset({"tagclass"}),
            "Place": frozenset({"place"}),
            "Organisation": frozenset({"organisation"}),
        }
        # Cypher relationship types: SCREAMING_SNAKE of the canonical name.
        self.cypher_rel_types: dict[str, str] = {
            _screaming(rel.name): rel.name for rel in _RELATIONSHIPS
        }

        # Gremlin: lower-case entity names; canonical edge labels as-is.
        self.gremlin_vertex_labels: dict[str, frozenset[str]] = {
            name: frozenset({name}) for name in self.entities
        }
        self.gremlin_edge_labels: dict[str, str] = {
            rel.name: rel.name for rel in _RELATIONSHIPS
        }

        # SPARQL: classes and predicates.
        self.sparql_classes: dict[str, frozenset[str]] = {
            "snb:Person": frozenset({"person"}),
            "snb:Forum": frozenset({"forum"}),
            "snb:Post": frozenset({"post"}),
            "snb:Comment": frozenset({"comment"}),
            "snb:Tag": frozenset({"tag"}),
            "snb:TagClass": frozenset({"tagclass"}),
            "snb:Place": frozenset({"place"}),
            "snb:Organisation": frozenset({"organisation"}),
        }
        self.sparql_rel_predicates: dict[str, str] = {
            f"snb:{rel.name}": rel.name for rel in _RELATIONSHIPS
        }
        # property predicates: name -> (owning entity set, value type)
        self.sparql_prop_predicates: dict[str, tuple[frozenset[str], str]] = (
            self._build_sparql_props()
        )
        # reified-statement predicates -> the relationship they describe
        self.sparql_statement_predicates: dict[str, str] = {
            "snb:knowsFrom": "knows",
            "snb:knowsTo": "knows",
            "snb:memberForum": "hasMember",
            "snb:memberPerson": "hasMember",
            "snb:joinDate": "hasMember",
            "snb:likePerson": "likes",
            "snb:likeMessage": "likes",
        }

    def _build_sparql_props(self) -> dict[str, tuple[frozenset[str], str]]:
        owners: dict[str, set[str]] = {}
        types: dict[str, str] = {}
        for entity, props in self.entities.items():
            for prop, prop_type in props.items():
                owners.setdefault(prop, set()).add(entity)
                types[prop] = prop_type
        # edge properties live on reified statement nodes; creationDate
        # additionally appears on entities so the merge above covers it
        return {
            f"snb:{prop}": (frozenset(owner_set), types[prop])
            for prop, owner_set in owners.items()
        }

    # -- lookups shared by walkers ----------------------------------------------

    def entity_prop_type(self, entities: frozenset[str], key: str) -> str | None:
        """Declared type of ``key`` on any of ``entities`` (None if the
        key exists on none of them)."""
        for entity in entities:
            declared = self.entities[entity].get(key)
            if declared is not None:
                return declared
        return None

    def all_property_keys(self) -> frozenset[str]:
        keys: set[str] = set()
        for props in self.entities.values():
            keys.update(props)
        for rel in self.relationships.values():
            keys.update(rel.props)
        return frozenset(keys)

    # -- footprint helpers -----------------------------------------------------

    def close_footprint(self, concepts: set[str]) -> frozenset[str]:
        """Normalize a raw concept set for cross-dialect comparison.

        Adds relationship endpoints (destinations always; sources when
        the source set is a single entity or the message pair, since
        wider source sets — hasTag, isLocatedIn — would over-approximate).
        """
        out = set(concepts)
        for name in list(out):
            rel = self.relationships.get(name)
            if rel is None:
                continue
            out |= rel.dst
            if len(rel.src) == 1 or rel.src == MESSAGE:
                out |= rel.src
        return frozenset(out)


def _screaming(name: str) -> str:
    out = []
    for ch in name:
        if ch.isupper():
            out.append("_")
        out.append(ch.upper())
    return "".join(out)


@lru_cache(maxsize=1)
def default_catalog() -> SchemaCatalog:
    return SchemaCatalog()
