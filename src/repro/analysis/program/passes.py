"""The QA8xx interprocedural passes over function summaries.

========  ============================================================
QA801     lock-order inversion: per-function acquisition sequences are
          composed across the call graph; a strongly connected
          component in the global resource-order graph is a potential
          AB/BA deadlock no single function exhibits on its own.
QA802     a lock or transaction is acquired on a path with no
          dominating release: no enclosing releasing context manager,
          and no try handler/finally that aborts or releases.
          Functions that *transfer ownership* (return the transaction,
          or lock on behalf of an externally managed transaction)
          shift the obligation to their callers.
QA803     blocking I/O (WAL fsync, Gremlin submit, checkpoint) is
          reachable while a lock is held.  Release operations
          (commit/abort/release_all) end the held region and are not
          traversed: forcing the log *inside* commit is the 2PL
          protocol, not a hazard.
QA804     a storage-mutation function emits no sanitizer trace event.
          Mutation means: a record/page-level ``charge``, or mutating
          the same ``self`` attributes a traced sibling method of the
          class mutates.  This keeps PR 5's runtime hooks from rotting
          silently as the engines grow.
QA805     a cache attribute is written (``put``/``store``) but no code
          path in its class ever registers an invalidation
          (``bump_epoch``/``invalidate*``/``clear``).
========  ============================================================

The MVCC-effect passes QA806–QA810 live in
:mod:`repro.analysis.program.effects` and run through the same
:func:`run_passes` entry point.

Every pass emits on the shared :class:`~repro.analysis.diagnostics.
Diagnostic` model with ``dialect="python"`` and
``operation="module:Class.method"`` so findings are addressable by the
baseline file.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.diagnostics import Diagnostic, SourceLocation, make
from repro.analysis.lockorder import _sccs
from repro.analysis.program.callgraph import CallGraph
from repro.analysis.program.summaries import (
    MUTATION_CHARGES,
    RELEASE_NAMES,
    FunctionSummary,
)

#: modules implementing the locking mechanism itself: their internal
#: re-dispatch (`acquire_many` -> `self.acquire`) is not client code
#: and must not contribute resource tokens or discipline obligations
FRAMEWORK_MODULES = {"repro.txn.locks", "repro.txn.manager"}

PASS_NAMES = (
    "QA801",
    "QA802",
    "QA803",
    "QA804",
    "QA805",
    "QA806",
    "QA807",
    "QA808",
    "QA809",
    "QA810",
)


class Program:
    """The call graph plus every function summary, shared by passes."""

    def __init__(
        self, graph: CallGraph, summaries: dict[str, FunctionSummary]
    ) -> None:
        self.graph = graph
        self.summaries = summaries
        self._transfer: set[str] | None = None
        self._lock_transitive: set[str] | None = None

    def resolve(self, name: str) -> list[FunctionSummary]:
        return [
            self.summaries[info.ref]
            for info in self.graph.resolve(name)
            if info.ref in self.summaries
        ]

    # -- shared interprocedural facts ------------------------------------

    def transfer_functions(self) -> set[str]:
        """Functions that hand an acquired resource to their caller.

        Either the function returns a name bound from ``begin()`` (or
        from a call to another transfer function), or it acquires locks
        on behalf of an externally managed transaction (the acquire's
        txn-id argument is rooted at ``self.``).
        """
        if self._transfer is not None:
            return self._transfer
        transfer: set[str] = set()
        changed = True
        while changed:
            changed = False
            for ref, summary in self.summaries.items():
                if ref in transfer:
                    continue
                if self._transfers(summary, transfer):
                    transfer.add(ref)
                    changed = True
        self._transfer = transfer
        return transfer

    def _transfers(
        self, summary: FunctionSummary, transfer: set[str]
    ) -> bool:
        bound: set[str] = set()
        for event in summary.events:
            if event.kind == "acquire":
                if (
                    event.detail == "lock"
                    and event.txn_arg is not None
                    and event.txn_arg.startswith("self.")
                ):
                    return True  # delegated: owner lives elsewhere
                if event.bound is not None:
                    bound.add(event.bound)
            elif event.kind == "call" and event.bound is not None:
                if any(
                    callee.ref in transfer
                    and callee.ref != summary.ref
                    for callee in self.resolve(event.callee or "")
                ):
                    bound.add(event.bound)
        return bool(bound & summary.returns_names)

    def lock_transitive(self) -> set[str]:
        """Functions that (transitively) perform a lock acquisition."""
        if self._lock_transitive is not None:
            return self._lock_transitive
        result = {
            ref
            for ref, summary in self.summaries.items()
            if any(
                e.kind == "acquire" and e.detail == "lock"
                for e in summary.events
            )
        }
        changed = True
        while changed:
            changed = False
            for ref, summary in self.summaries.items():
                if ref in result:
                    continue
                for event in summary.events:
                    if event.kind != "call":
                        continue
                    if any(
                        callee.ref in result
                        for callee in self.resolve(event.callee or "")
                    ):
                        result.add(ref)
                        changed = True
                        break
        self._lock_transitive = result
        return result


def run_passes(
    program: Program, selected: set[str] | None = None
) -> list[Diagnostic]:
    """Run the chosen passes (all five by default), sorted stably."""
    wanted = set(PASS_NAMES) if selected is None else selected
    diagnostics: list[Diagnostic] = []
    if "QA801" in wanted:
        diagnostics += pass_lock_order(program)
    if "QA802" in wanted:
        diagnostics += pass_release_discipline(program)
    if "QA803" in wanted:
        diagnostics += pass_blocking_io(program)
    if "QA804" in wanted:
        diagnostics += pass_trace_coverage(program)
    if "QA805" in wanted:
        diagnostics += pass_cache_invalidation(program)
    # imported here: effects.py uses Program, defined in this module
    from repro.analysis.program.effects import run_effect_passes

    diagnostics += run_effect_passes(program, wanted)
    diagnostics.sort(
        key=lambda d: (d.code, d.location.operation, d.message)
    )
    return diagnostics


def _location(ref: str) -> SourceLocation:
    return SourceLocation("python", ref)


# -- QA801: composed lock order ------------------------------------------


def pass_lock_order(program: Program) -> list[Diagnostic]:
    tokens_all: dict[str, set[str]] = {}
    pairs: dict[str, set[tuple[str, str]]] = {}
    summaries = {
        ref: s
        for ref, s in program.summaries.items()
        if s.info.module not in FRAMEWORK_MODULES
    }
    for ref in summaries:
        tokens_all[ref] = set()
        pairs[ref] = set()

    def resolve(name: str) -> list[str]:
        return [
            s.ref for s in program.resolve(name) if s.ref in summaries
        ]

    changed = True
    while changed:
        changed = False
        for ref, summary in summaries.items():
            held: set[str] = set()
            new_tokens: set[str] = set()
            new_pairs: set[tuple[str, str]] = set()
            for event in summary.events:
                if event.kind == "acquire" and event.token is not None:
                    token = event.token
                    new_pairs |= {
                        (h, token) for h in held if h != token
                    }
                    held.add(token)
                    new_tokens.add(token)
                elif event.kind == "call":
                    for callee_ref in resolve(event.callee or ""):
                        callee_tokens = tokens_all[callee_ref]
                        new_pairs |= pairs[callee_ref]
                        new_pairs |= {
                            (h, t)
                            for h in held
                            for t in callee_tokens
                            if h != t
                        }
                        held |= callee_tokens
                        new_tokens |= callee_tokens
            if not new_pairs <= pairs[ref] or not (
                new_tokens <= tokens_all[ref]
            ):
                pairs[ref] |= new_pairs
                tokens_all[ref] |= new_tokens
                changed = True

    # second walk: attribute each edge to the functions that create it
    edges: dict[tuple[str, str], set[str]] = {}
    for ref, summary in summaries.items():
        held = set()
        for event in summary.events:
            if event.kind == "acquire" and event.token is not None:
                for h in held:
                    if h != event.token:
                        edges.setdefault((h, event.token), set()).add(
                            ref
                        )
                held.add(event.token)
            elif event.kind == "call":
                for callee_ref in resolve(event.callee or ""):
                    for h in held:
                        for t in tokens_all[callee_ref]:
                            if h != t:
                                edges.setdefault((h, t), set()).add(ref)
                    held |= tokens_all[callee_ref]

    graph: dict[str, set[str]] = {}
    for earlier, later in edges:
        graph.setdefault(earlier, set()).add(later)
        graph.setdefault(later, set())
    out: list[Diagnostic] = []
    for component in _sccs(graph):
        if len(component) < 2:
            continue
        members = sorted(component)
        witnesses = sorted(
            {
                witness
                for (earlier, later), refs in edges.items()
                if earlier in component and later in component
                for witness in refs
            }
        )
        out.append(
            make(
                "QA801",
                f"lock resources {members} are acquired in "
                f"conflicting orders across call chains; witnesses: "
                f"{witnesses}",
                _location(witnesses[0] if witnesses else "?"),
            )
        )
    return out


# -- QA802: release discipline -------------------------------------------


def pass_release_discipline(program: Program) -> list[Diagnostic]:
    transfer = program.transfer_functions()
    out: list[Diagnostic] = []
    for ref, summary in program.summaries.items():
        if summary.info.module in FRAMEWORK_MODULES:
            continue
        unsafe: list[str] = []
        for event in summary.events:
            if event.with_safe:
                continue
            if event.kind == "acquire":
                unsafe.append(
                    f"{event.detail} acquisition at line {event.line}"
                )
            elif event.kind == "call":
                holders = [
                    callee.ref
                    for callee in program.resolve(event.callee or "")
                    if callee.ref in transfer and callee.ref != ref
                ]
                if holders:
                    unsafe.append(
                        f"call to {event.callee} (acquires on the "
                        f"caller's behalf) at line {event.line}"
                    )
        if not unsafe:
            continue
        if ref in transfer:
            continue  # the caller carries the obligation
        if summary.has_release_handler:
            continue
        out.append(
            make(
                "QA802",
                f"{ref} acquires a resource with no dominating "
                f"release on the exception path ({unsafe[0]}); an "
                f"exception leaks the lock/transaction — wrap in "
                f"try/except with abort()/release_all(), or use a "
                f"releasing context manager",
                _location(ref),
            )
        )
    return out


# -- QA803: blocking I/O under a lock ------------------------------------


def pass_blocking_io(program: Program) -> list[Diagnostic]:
    reach = _io_reachability(program)
    transfer = program.transfer_functions()
    lock_transitive = program.lock_transitive()
    lock_transfer = transfer & lock_transitive
    out: list[Diagnostic] = []
    for ref, summary in program.summaries.items():
        held = False
        reported: set[str] = set()
        for event in summary.events:
            if event.kind == "acquire" and event.detail == "lock":
                held = True
            elif event.kind == "call":
                callee = event.callee or ""
                if callee in RELEASE_NAMES:
                    held = False
                    continue
                callee_refs = [
                    s.ref for s in program.resolve(callee)
                ]
                if held:
                    for callee_ref in callee_refs:
                        for kind in sorted(reach.get(callee_ref, ())):
                            if kind in reported:
                                continue
                            reported.add(kind)
                            path = _io_path(
                                program, reach, callee_ref, kind
                            )
                            out.append(
                                make(
                                    "QA803",
                                    f"{ref} holds a lock while "
                                    f"{kind} is reachable via "
                                    f"{' -> '.join(path)}",
                                    _location(ref),
                                )
                            )
                if any(r in lock_transfer for r in callee_refs):
                    held = True
            elif event.kind == "io" and held:
                if event.detail not in reported:
                    reported.add(event.detail or "io")
                    out.append(
                        make(
                            "QA803",
                            f"{ref} performs blocking "
                            f"{event.detail} at line {event.line} "
                            f"while holding a lock",
                            _location(ref),
                        )
                    )
    return out


def _io_reachability(program: Program) -> dict[str, set[str]]:
    """ref -> blocking-io kinds transitively reachable from it.

    Traversal never follows a release-named call (commit/abort/
    release_all): the fsync inside the commit protocol ends the held
    region rather than extending it.
    """
    reach: dict[str, set[str]] = {
        ref: {
            e.detail
            for e in summary.events
            if e.kind == "io" and e.detail is not None
        }
        for ref, summary in program.summaries.items()
        if summary.info.name not in RELEASE_NAMES
    }
    for ref in program.summaries:
        reach.setdefault(ref, set())
    changed = True
    while changed:
        changed = False
        for ref, summary in program.summaries.items():
            if summary.info.name in RELEASE_NAMES:
                continue
            acc = reach[ref]
            before = len(acc)
            for event in summary.events:
                if event.kind != "call":
                    continue
                callee = event.callee or ""
                if callee in RELEASE_NAMES:
                    continue
                for callee_summary in program.resolve(callee):
                    acc |= reach.get(callee_summary.ref, set())
            if len(acc) != before:
                changed = True
    return reach


def _io_path(
    program: Program,
    reach: dict[str, set[str]],
    start: str,
    kind: str,
) -> list[str]:
    """A witness call chain from ``start`` to a direct ``kind`` site."""
    parents: dict[str, str | None] = {start: None}
    queue: deque[str] = deque([start])
    while queue:
        current = queue.popleft()
        summary = program.summaries[current]
        direct = {
            e.detail for e in summary.events if e.kind == "io"
        }
        if kind in direct:
            path = [current]
            while parents[path[-1]] is not None:
                parent = parents[path[-1]]
                assert parent is not None
                path.append(parent)
            return list(reversed(path))
        for event in summary.events:
            if event.kind != "call":
                continue
            callee = event.callee or ""
            if callee in RELEASE_NAMES:
                continue
            for callee_summary in program.resolve(callee):
                nxt = callee_summary.ref
                if nxt in parents:
                    continue
                if kind not in reach.get(nxt, set()):
                    continue
                parents[nxt] = current
                queue.append(nxt)
    return [start]


# -- QA804: sanitizer trace coverage -------------------------------------


def pass_trace_coverage(program: Program) -> list[Diagnostic]:
    by_class: dict[
        tuple[str, str], list[FunctionSummary]
    ] = {}
    out: list[Diagnostic] = []
    for summary in program.summaries.values():
        cls = summary.info.class_name
        if cls is not None:
            by_class.setdefault(
                (summary.info.module, cls), []
            ).append(summary)
        elif _charges_mutation(summary):
            out.append(_qa804(summary, via="charge"))
    for members in by_class.values():
        traced_attrs: set[str] = set()
        for member in members:
            if member.trace_write:
                traced_attrs |= member.self_mutations
        for member in members:
            if member.trace_write or member.info.name == "__init__":
                continue
            if _charges_mutation(member):
                out.append(_qa804(member, via="charge"))
            elif member.self_mutations & traced_attrs:
                shared = sorted(member.self_mutations & traced_attrs)
                out.append(_qa804(member, via=f"attrs {shared}"))
    return out


def _charges_mutation(summary: FunctionSummary) -> bool:
    return bool(summary.charges & MUTATION_CHARGES)


def _qa804(summary: FunctionSummary, via: str) -> Diagnostic:
    return make(
        "QA804",
        f"{summary.ref} mutates storage ({via}) but never emits a "
        f"runtime.TRACE.write event; the dynamic sanitizer cannot see "
        f"these writes — add the trace hook or baseline it as a "
        f"sub-record primitive",
        _location(summary.ref),
    )


# -- QA805: cache invalidation coverage ----------------------------------


def pass_cache_invalidation(program: Program) -> list[Diagnostic]:
    defs: dict[tuple[str, str, str], str] = {}
    writes: dict[tuple[str, str], set[str]] = {}
    invalidations: dict[tuple[str, str], set[str]] = {}
    first_writer: dict[tuple[str, str, str], str] = {}
    for summary in program.summaries.values():
        cls = summary.info.class_name
        if cls is None:
            continue
        key = (summary.info.module, cls)
        for attr, cache_cls in summary.cache_defs.items():
            defs[(*key, attr)] = cache_cls
        for attr in summary.cache_writes:
            writes.setdefault(key, set()).add(attr)
            first_writer.setdefault((*key, attr), summary.ref)
        invalidations.setdefault(key, set()).update(
            summary.cache_invalidations
        )
    out: list[Diagnostic] = []
    for (module, cls, attr), cache_cls in sorted(defs.items()):
        key = (module, cls)
        if attr not in writes.get(key, set()):
            continue
        if attr in invalidations.get(key, set()):
            continue
        writer = first_writer.get((module, cls, attr), "?")
        out.append(
            make(
                "QA805",
                f"{module}:{cls}.{attr} ({cache_cls}) is written by "
                f"{writer} but no code path in {cls} ever registers "
                f"an invalidation (bump_epoch/invalidate*/clear); "
                f"stale entries will outlive the truth they cache",
                _location(f"{module}:{cls}.{attr}"),
            )
        )
    return out
