"""The QA806–QA810 interprocedural MVCC-effect passes.

Where the PR 6 passes reason about *resources* (locks, transactions,
I/O), these reason about *versions*: every function in a class that
owns a :class:`~repro.storage.mvcc.VersionStore` is abstracted to a
point in a small effect lattice over its storage objects —

* reads: RAW (subscript/iteration/probe of a record container with no
  visibility consultation) < VERSIONED (a ``visible``/``filter_visible``
  /``read``/``stale`` call dominates, possibly in a callee);
* index probes: UNFIXED (index hits served as-is) < FIXED (the probe
  transitively reaches ``stale_keys``, the re-check discipline for
  unversioned index entries);
* writes: UNSTAMPED < STAMPED (``stamp``/``record_update``/
  ``record_delete``/... reachable);
* cache ops: UNGATED < GATED (``stale_reads``/``stale`` consulted);
* reclaim: OUTSIDE < INSIDE the ``on_reclaim`` watermark closure.

Facts are seeded per function from the syntactic summaries and
propagated *up* the call graph to fixpoint (a caller inherits its
callees' consultations), so a helper can carry the discipline for the
methods that use it.  Each pass then reports members stuck at the
lattice bottom.

========  ============================================================
QA806     snapshot-bypassing raw read on a versioned store: a pure
          reader touches record containers (or probes a secondary
          index without the ``stale_keys`` fixup — index entries are
          unversioned, DESIGN §13) outside the visibility layer.
QA807     mutation without version stamping: a record container is
          mutated on a path that never reaches a version write, so
          snapshot readers would observe the change mid-flight.
QA808     cache fill/hit not gated on snapshot staleness: a stale
          snapshot could read — or poison — entries derived from
          state newer than its read timestamp.
QA809     physical reclaim outside the watermark path: record data is
          removed by a function that is neither inside the
          ``on_reclaim`` closure nor consulting ``record_delete``/
          ``undelete`` (the deferred-delete decision).
QA810     side effects in ``repro.exec.*``: compiled closures are
          read-only batch kernels; lock acquisition, trace writes,
          mutation charges, and storage/cache write verbs are all
          hazards there.
========  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, SourceLocation, make
from repro.analysis.program.passes import Program
from repro.analysis.program.summaries import (
    MUTATION_CHARGES,
    MUTATOR_ATTRS,
    FunctionSummary,
)

#: read-side VersionStore methods: calling any of these (on the class's
#: store attr) means the function consults the visibility layer
VERSION_READ_METHODS = {
    "visible",
    "filter_visible",
    "read",
    "stale",
    "stale_keys",
}

#: write-side VersionStore methods: the function records its mutation
VERSION_WRITE_METHODS = {
    "stamp",
    "record_update",
    "record_delete",
    "record_recreate",
    "undelete",
    "move",
}

#: VersionStore methods that consult the deferred-delete decision —
#: the caller-side licence for physical removal (QA809)
DELETE_CONSULT_METHODS = {"record_delete", "undelete", "record_recreate"}

#: bare callee names that gate a cache op on snapshot staleness
STALE_GATE_NAMES = {"stale", "stale_reads", "stale_keys"}

#: accessor methods that read record data out of a container raw
READ_ACCESSORS = {
    "get",
    "scan",
    "search",
    "range_scan",
    "fetch",
    "read_row",
    "read_batch",
    "read_values",
    "items",
    "values",
    "keys",
}

#: index-probe accessors (rule B of QA806): their results come from
#: *unversioned* index entries and need the ``stale_keys`` fixup
PROBE_ACCESSORS = {"search", "range_scan"}

#: cache operations that must be staleness-gated (fills and hits);
#: evictions (``pop``/``clear``/``invalidate*``) are always safe
CACHE_OP_NAMES = {"get", "put", "store", "setdefault"}

#: callee names that are storage/cache *writes* when they appear in a
#: compiled-execution module.  Deliberately excludes the generic
#: local-collection verbs (``append``/``add``/``update``/``pop``/
#: ``setdefault``) the kernels use on their own batch state.
EXEC_EFFECT_CALLS = {
    "stamp",
    "record_update",
    "record_delete",
    "record_recreate",
    "undelete",
    "bump_epoch",
    "invalidate",
    "invalidate_all",
    "invalidate_members",
    "create_node",
    "create_rel",
    "create_vertex",
    "create_edge",
    "set_node_prop",
    "set_vertex_prop",
    "apply_update_batch",
    "put",
    "store",
    "insert",
    "submit",
    "delete",
    "remove",
}

#: module prefix whose functions must be read-only batch kernels
EXEC_MODULE_PREFIX = "repro.exec"

EFFECT_PASS_NAMES = ("QA806", "QA807", "QA808", "QA809", "QA810")


@dataclass
class StoreClassFacts:
    """Effect-relevant facts about one VersionStore-owning class."""

    module: str
    class_name: str
    members: list[FunctionSummary] = field(default_factory=list)
    #: self attrs holding the VersionStore(s)
    store_attrs: set[str] = field(default_factory=set)
    #: record containers: container-initialized attrs that some member
    #: mutates; excludes caches and index structures
    containers: set[str] = field(default_factory=set)
    #: index structures (attr name contains "index"): rule B territory
    index_attrs: set[str] = field(default_factory=set)
    #: cache attrs: typed cache defs plus ``*_cache`` containers
    cache_attrs: set[str] = field(default_factory=set)
    #: the on_reclaim callback and its same-class call closure — the
    #: sanctioned watermark reclaim path
    sanctioned: set[str] = field(default_factory=set)
    #: just the registered on_reclaim callback names (the QA809 entry
    #: points; the rest of the closure also serves ordinary paths)
    reclaim_callbacks: set[str] = field(default_factory=set)

    def key(self) -> tuple[str, str]:
        return (self.module, self.class_name)


def collect_store_classes(
    program: Program,
) -> dict[tuple[str, str], StoreClassFacts]:
    """Facts for every class that owns a VersionStore."""
    by_class: dict[tuple[str, str], list[FunctionSummary]] = {}
    for summary in program.summaries.values():
        cls = summary.info.class_name
        if cls is not None:
            by_class.setdefault(
                (summary.info.module, cls), []
            ).append(summary)
    out: dict[tuple[str, str], StoreClassFacts] = {}
    for (module, cls), members in by_class.items():
        store_attrs: set[str] = set()
        callbacks: set[str] = set()
        container_defs: set[str] = set()
        cache_attrs: set[str] = set()
        mutated: set[str] = set()
        for member in members:
            for attr, callback in member.version_store_defs.items():
                store_attrs.add(attr)
                if callback is not None:
                    callbacks.add(callback)
            container_defs |= member.container_defs
            cache_attrs |= set(member.cache_defs)
            mutated |= member.self_mutations
            for attr, calls in member.attr_calls.items():
                if calls & MUTATOR_ATTRS:
                    mutated.add(attr)
        if not store_attrs:
            continue
        cache_attrs |= {
            a for a in container_defs if a.endswith("_cache")
        }
        index_attrs = {
            a
            for a in container_defs | mutated
            if "index" in a and a not in cache_attrs
        }
        facts = StoreClassFacts(
            module=module,
            class_name=cls,
            members=members,
            store_attrs=store_attrs,
            containers={
                a
                for a in container_defs & mutated
                if a not in cache_attrs
                and a not in index_attrs
                and a not in store_attrs
            },
            index_attrs=index_attrs,
            cache_attrs=cache_attrs,
        )
        facts.reclaim_callbacks = set(callbacks)
        facts.sanctioned = _reclaim_closure(facts, callbacks)
        out[(module, cls)] = facts
    return out


def _reclaim_closure(
    facts: StoreClassFacts, callbacks: set[str]
) -> set[str]:
    """The on_reclaim callback plus its same-class call closure."""
    by_name = {m.info.name: m for m in facts.members}
    todo = [by_name[c] for c in callbacks if c in by_name]
    closure: set[str] = set()
    while todo:
        member = todo.pop()
        if member.ref in closure:
            continue
        closure.add(member.ref)
        for event in member.events:
            if event.kind != "call":
                continue
            callee = by_name.get(event.callee or "")
            if callee is not None and callee.ref not in closure:
                todo.append(callee)
    return closure


def _reachable(program: Program, seeds: set[str]) -> set[str]:
    """Functions that are in ``seeds`` or call into the set (fixpoint).

    Monotone over the finite function set, so the worklist terminates
    even on recursive call graphs — each iteration only ever *adds*
    refs, and the loop stops on the first unchanged sweep.
    """
    result = set(seeds)
    changed = True
    while changed:
        changed = False
        for ref, summary in program.summaries.items():
            if ref in result:
                continue
            for event in summary.events:
                if event.kind != "call":
                    continue
                if any(
                    callee.ref in result
                    for callee in program.resolve(event.callee or "")
                ):
                    result.add(ref)
                    changed = True
                    break
    return result


def _store_method_calls(
    summary: FunctionSummary, facts: StoreClassFacts
) -> set[str]:
    """Names of VersionStore methods this function calls directly."""
    calls: set[str] = set()
    for attr in facts.store_attrs:
        calls |= summary.attr_calls.get(attr, set())
    return calls


def _is_writer(
    summary: FunctionSummary, facts: StoreClassFacts
) -> bool:
    """Does the function mutate storage (it may then read it raw)?"""
    if _store_method_calls(summary, facts) & VERSION_WRITE_METHODS:
        return True
    touched = facts.containers | facts.index_attrs
    if summary.self_mutations & touched:
        return True
    return any(
        summary.attr_calls.get(attr, set()) & MUTATOR_ATTRS
        for attr in touched
    )


def _location(ref: str) -> SourceLocation:
    return SourceLocation("python", ref)


def run_effect_passes(
    program: Program, selected: set[str] | None = None
) -> list[Diagnostic]:
    wanted = (
        set(EFFECT_PASS_NAMES) if selected is None else selected
    )
    if not wanted & set(EFFECT_PASS_NAMES):
        return []
    facts = collect_store_classes(program)
    out: list[Diagnostic] = []
    if "QA806" in wanted:
        out += pass_snapshot_bypass(program, facts)
    if "QA807" in wanted:
        out += pass_unversioned_mutation(program, facts)
    if "QA808" in wanted:
        out += pass_ungated_cache(program, facts)
    if "QA809" in wanted:
        out += pass_reclaim_discipline(program, facts)
    if "QA810" in wanted:
        out += pass_exec_effects(program)
    return out


# -- QA806: snapshot-bypassing raw reads ---------------------------------


def _is_lookup_name(name: str) -> bool:
    return (
        name == "lookup"
        or name.startswith("lookup_")
        or name.endswith("_lookup")
    )


def pass_snapshot_bypass(
    program: Program, facts: dict[tuple[str, str], StoreClassFacts]
) -> list[Diagnostic]:
    version_checked = _reachable(
        program,
        {
            member.ref
            for cf in facts.values()
            for member in cf.members
            if _store_method_calls(member, cf) & VERSION_READ_METHODS
        },
    )
    index_fixed = _reachable(
        program,
        {
            ref
            for ref, summary in program.summaries.items()
            if any(
                e.kind == "call" and e.callee == "stale_keys"
                for e in summary.events
            )
        },
    )
    out: list[Diagnostic] = []
    for cf in facts.values():
        for member in cf.members:
            name = member.info.name
            if name == "__init__" or member.ref in cf.sanctioned:
                continue
            if _is_writer(member, cf):
                continue
            probes = _is_lookup_name(name) or any(
                member.attr_calls.get(attr, set()) & PROBE_ACCESSORS
                for attr in cf.index_attrs
            )
            if probes and member.ref not in index_fixed:
                out.append(
                    make(
                        "QA806",
                        f"{member.ref} serves results from an "
                        f"unversioned secondary index without the "
                        f"stale_keys() fixup; under a held snapshot, "
                        f"entries re-filed by later writers make the "
                        f"probe miss rows the snapshot must see (and "
                        f"surface rows it must not) — re-check stale "
                        f"keys against the snapshot-visible value, or "
                        f"fall back to a scan",
                        _location(member.ref),
                    )
                )
                continue
            raw = (
                member.attr_subscript_loads | member.attr_iterations
            ) & cf.containers
            raw |= {
                attr
                for attr in cf.containers
                if member.attr_calls.get(attr, set()) & READ_ACCESSORS
            }
            if raw and member.ref not in version_checked:
                touched = ", ".join(sorted(raw))
                out.append(
                    make(
                        "QA806",
                        f"{member.ref} reads record container(s) "
                        f"{touched} raw — no visible()/filter_visible"
                        f"()/read()/stale() on {cf.class_name}'s "
                        f"version store dominates the access, so a "
                        f"snapshot reader would observe "
                        f"latest-committed state instead of its own "
                        f"view",
                        _location(member.ref),
                    )
                )
    return out


# -- QA807: mutation without version stamping ----------------------------


def pass_unversioned_mutation(
    program: Program, facts: dict[tuple[str, str], StoreClassFacts]
) -> list[Diagnostic]:
    stamped = _reachable(
        program,
        {
            member.ref
            for cf in facts.values()
            for member in cf.members
            if _store_method_calls(member, cf) & VERSION_WRITE_METHODS
        },
    )
    out: list[Diagnostic] = []
    for cf in facts.values():
        for member in cf.members:
            if (
                member.info.name == "__init__"
                or member.ref in cf.sanctioned
            ):
                continue
            mutated = member.self_mutations & cf.containers
            mutated |= {
                attr
                for attr in cf.containers
                if member.attr_calls.get(attr, set()) & MUTATOR_ATTRS
            }
            if mutated and member.ref not in stamped:
                touched = ", ".join(sorted(mutated))
                out.append(
                    make(
                        "QA807",
                        f"{member.ref} mutates record container(s) "
                        f"{touched} without reaching a version write "
                        f"(stamp/record_update/record_delete/...); "
                        f"active snapshots would see the new value "
                        f"mid-transaction instead of their own "
                        f"version",
                        _location(member.ref),
                    )
                )
    return out


# -- QA808: cache ops not gated on snapshot staleness --------------------


def pass_ungated_cache(
    program: Program, facts: dict[tuple[str, str], StoreClassFacts]
) -> list[Diagnostic]:
    gated = _reachable(
        program,
        {
            ref
            for ref, summary in program.summaries.items()
            if any(
                e.kind == "call" and e.callee in STALE_GATE_NAMES
                for e in summary.events
            )
        },
    )
    out: list[Diagnostic] = []
    for cf in facts.values():
        for member in cf.members:
            if member.info.name == "__init__":
                continue
            ops = {
                attr
                for attr in cf.cache_attrs
                if member.attr_calls.get(attr, set()) & CACHE_OP_NAMES
            }
            ops |= (
                member.attr_subscript_loads | member.self_mutations
            ) & cf.cache_attrs
            if ops and member.ref not in gated:
                touched = ", ".join(sorted(ops))
                out.append(
                    make(
                        "QA808",
                        f"{member.ref} fills or reads cache(s) "
                        f"{touched} without consulting snapshot "
                        f"staleness (oracle.stale_reads() or "
                        f"mvcc.stale()); a stale snapshot could be "
                        f"served — or poison — entries derived from "
                        f"state newer than its read timestamp",
                        _location(member.ref),
                    )
                )
    return out


# -- QA809: physical reclaim outside the watermark path ------------------


def pass_reclaim_discipline(
    program: Program, facts: dict[tuple[str, str], StoreClassFacts]
) -> list[Diagnostic]:
    consults = _reachable(
        program,
        {
            member.ref
            for cf in facts.values()
            for member in cf.members
            if _store_method_calls(member, cf) & DELETE_CONSULT_METHODS
        },
    )
    out: list[Diagnostic] = []
    for cf in facts.values():
        if not cf.sanctioned:
            continue
        # only the registered callbacks are hazardous to call directly:
        # the helpers in their closure (raw fetch, index unlink) also
        # serve ordinary read/write paths
        sanctioned_names = cf.reclaim_callbacks
        for member in cf.members:
            if (
                member.info.name == "__init__"
                or member.ref in cf.sanctioned
            ):
                continue
            reclaim_calls = sorted(
                {
                    event.callee
                    for event in member.events
                    if event.kind == "call"
                    and event.callee in sanctioned_names
                }
            )
            if reclaim_calls and member.ref not in consults:
                out.append(
                    make(
                        "QA809",
                        f"{member.ref} calls the physical-reclaim "
                        f"path ({', '.join(reclaim_calls)}) without "
                        f"consulting record_delete()/undelete(); "
                        f"outside the GC watermark discipline this "
                        f"removes data an active snapshot may still "
                        f"need",
                        _location(member.ref),
                    )
                )
    return out


# -- QA810: side effects in compiled execution ---------------------------


def pass_exec_effects(program: Program) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for ref, summary in program.summaries.items():
        if not summary.info.module.startswith(EXEC_MODULE_PREFIX):
            continue
        hazards: list[str] = []
        acquires = summary.acquire_events()
        if acquires:
            hazards.append(
                f"{acquires[0].detail} acquisition at line "
                f"{acquires[0].line}"
            )
        if summary.trace_write:
            hazards.append("a runtime.TRACE.write event")
        mutation_charges = sorted(summary.charges & MUTATION_CHARGES)
        if mutation_charges:
            hazards.append(
                f"mutation charge(s) {', '.join(mutation_charges)}"
            )
        effect_calls = sorted(
            {
                event.callee
                for event in summary.events
                if event.kind == "call"
                and event.callee in EXEC_EFFECT_CALLS
            }
        )
        if effect_calls:
            hazards.append(
                f"storage/cache write call(s) "
                f"{', '.join(effect_calls)}"
            )
        if hazards:
            out.append(
                make(
                    "QA810",
                    f"{ref} is compiled-execution code but has side "
                    f"effects ({'; '.join(hazards)}); closures in "
                    f"{EXEC_MODULE_PREFIX}.* must be read-only batch "
                    f"kernels — move the effect behind the engine "
                    f"write path",
                    _location(ref),
                )
            )
    return out
