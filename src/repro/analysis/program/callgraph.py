"""Module-level call graph over the engine packages.

The whole-program passes (:mod:`repro.analysis.program.passes`) need to
follow a lock acquired in one function through the helpers it calls.
This module parses every source file of the engine packages, indexes
each function/method under a stable reference string
(``module:Class.method``), and resolves calls *by bare name*: a call
``x.foo(...)`` may dispatch to any analyzed function named ``foo``.

That resolution is deliberately conservative — Python offers no static
receiver types — so the passes over-approximate: they may follow calls
that cannot happen at runtime, but they never miss one that can.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

#: the engine packages the whole-program passes cover
SCOPE_PACKAGES: tuple[str, ...] = (
    "txn",
    "storage",
    "cache",
    "exec",
    "graphdb",
    "relational",
    "rdf",
    "tinkerpop",
    "sqlg",
    "titan",
)


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    module: str  # dotted module, e.g. "repro.txn.manager"
    qualname: str  # "TransactionManager.commit" or "free_function"
    name: str  # bare name, e.g. "commit"
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: bare names of every call made in the body, in source order
    calls: list[str] = field(default_factory=list)

    @property
    def ref(self) -> str:
        """The stable reference string used in diagnostics/baselines."""
        return f"{self.module}:{self.qualname}"


class CallGraph:
    """Functions indexed by bare name and by reference string."""

    def __init__(self, functions: list[FunctionInfo]) -> None:
        self.functions = functions
        self.by_ref: dict[str, FunctionInfo] = {
            f.ref: f for f in functions
        }
        self.by_name: dict[str, list[FunctionInfo]] = {}
        for function in functions:
            self.by_name.setdefault(function.name, []).append(function)

    def resolve(self, name: str) -> list[FunctionInfo]:
        """Every analyzed function a call to ``name`` may reach."""
        return self.by_name.get(name, [])


def default_sources() -> dict[str, str]:
    """module name -> source text for the in-scope engine packages."""
    root = Path(__file__).resolve().parents[2]  # .../src/repro
    sources: dict[str, str] = {}
    for package in SCOPE_PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            rel = path.relative_to(root.parent)
            module = ".".join(rel.with_suffix("").parts)
            if module.endswith(".__init__"):
                module = module[: -len(".__init__")]
            sources[module] = path.read_text(encoding="utf-8")
    return sources


def sources_from_paths(paths: Iterable[str | Path]) -> dict[str, str]:
    """Explicit file list -> source mapping (for ``--paths`` / tests)."""
    sources: dict[str, str] = {}
    for path in paths:
        p = Path(path)
        module = ".".join(p.with_suffix("").parts).lstrip(".")
        sources[module] = p.read_text(encoding="utf-8")
    return sources


def module_name_for_key(key: str) -> str:
    """Normalize a sources-mapping key ("pkg/mod.py") to a module."""
    name = key[:-3] if key.endswith(".py") else key
    return name.replace("/", ".").replace("\\", ".")


def build_call_graph(
    sources: Mapping[str, str],
) -> tuple[CallGraph, list[tuple[str, str]]]:
    """Parse every source; returns (graph, unparseable (module, error))."""
    functions: list[FunctionInfo] = []
    failures: list[tuple[str, str]] = []
    for key, text in sources.items():
        module = module_name_for_key(key)
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            failures.append((module, str(exc)))
            continue
        _collect(module, tree, None, None, functions)
    return CallGraph(functions), failures


def _collect(
    module: str,
    node: ast.AST,
    class_name: str | None,
    parent_qual: str | None,
    out: list[FunctionInfo],
) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            _collect(module, child, child.name, None, out)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = child.name
            if parent_qual is not None:
                qual = f"{parent_qual}.{qual}"
            if class_name is not None:
                qual = f"{class_name}.{qual}"
            info = FunctionInfo(
                module=module,
                qualname=qual,
                name=child.name,
                class_name=class_name,
                node=child,
            )
            info.calls = _call_names(child)
            out.append(info)
            # nested defs become their own FunctionInfo entries
            _collect(module, child, class_name, qual, out)


def _call_names(function: ast.AST) -> list[str]:
    """Bare callee names in ``function``, skipping nested defs.

    Lambdas are treated as part of the enclosing function: an undo
    closure registered with ``txn.on_abort(lambda: ...)`` may run while
    the transaction's locks are still held, so its calls belong to the
    caller's behavior.
    """
    names: list[str] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(child, ast.Call):
                name = _callee_name(child)
                if name is not None:
                    names.append(name)
            visit(child)

    visit(function)
    return names


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
