"""The committed clean-baseline suppression file.

`repro lint --program` must be green on today's tree so CI can fail on
*new* diagnostics only.  Findings that are judged-and-justified design
decisions (e.g. a page-granular write below the record layer's trace
point) are recorded here rather than silenced in code: every entry
carries a justification string, and entries that stop matching
anything are reported so the baseline shrinks as the tree improves.

Format (JSON)::

    {"version": 1,
     "entries": [{"code": "QA804",
                  "location": "repro.storage.buffer:DiskManager.write",
                  "justification": "..."}]}

``location`` is matched with :func:`fnmatch.fnmatch` against the
diagnostic's ``module:Class.method`` operation string, so one entry
can cover a package (``repro.storage.*``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

#: the committed baseline shipped next to this module
DEFAULT_BASELINE_PATH = Path(__file__).with_name("clean_baseline.json")


@dataclass(frozen=True)
class BaselineEntry:
    code: str
    location: str  # fnmatch pattern over "module:Class.method"
    justification: str

    def matches(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.code == self.code and fnmatch(
            diagnostic.location.operation, self.location
        )


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = []
    for row in raw.get("entries", []):
        entry = BaselineEntry(
            code=row["code"],
            location=row["location"],
            justification=row["justification"],
        )
        if not entry.justification.strip():
            raise ValueError(
                f"baseline entry {entry.code} {entry.location!r} "
                f"has no justification"
            )
        entries.append(entry)
    return entries


def unresolvable_entries(
    entries: list[BaselineEntry],
    function_refs: set[str],
) -> list[BaselineEntry]:
    """Entries whose location pattern no longer names anything real.

    An entry *resolves* when its pattern matches some function ref in
    the analyzed program, or — for the attribute-shaped QA805
    locations (``module:Class.attr``) — when the ``module:Class`` part
    matches a class that still has members.  Anything else is a
    leftover from renamed or deleted code and must be pruned, not
    silently kept: a pattern that matches nothing today could match a
    *new* finding tomorrow and suppress it unreviewed.
    """
    class_prefixes = {
        ref.rsplit(".", 1)[0]
        for ref in function_refs
        if "." in ref.partition(":")[2]
    }
    out: list[BaselineEntry] = []
    for entry in entries:
        if any(fnmatch(ref, entry.location) for ref in function_refs):
            continue
        # rpartition leaves the whole pattern when it has no colon
        # (a leading wildcard may cover the module:Class part)
        tail = entry.location.rpartition(":")[2]
        prefix = entry.location.rsplit(".", 1)[0]
        if "." in tail and any(
            fnmatch(cls, prefix) for cls in class_prefixes
        ):
            continue
        out.append(entry)
    return out


def apply_baseline(
    diagnostics: list[Diagnostic],
    entries: list[BaselineEntry],
) -> tuple[list[Diagnostic], int, list[BaselineEntry]]:
    """(kept diagnostics, suppressed count, entries that matched
    nothing — stale, candidates for deletion)."""
    used: set[BaselineEntry] = set()
    kept: list[Diagnostic] = []
    suppressed = 0
    for diagnostic in diagnostics:
        matched = False
        for entry in entries:
            if entry.matches(diagnostic):
                used.add(entry)
                matched = True
        if matched:
            suppressed += 1
        else:
            kept.append(diagnostic)
    stale = [entry for entry in entries if entry not in used]
    return kept, suppressed, stale
