"""Whole-program concurrency & resource-safety analysis (QA8xx).

The dynamic sanitizer (:mod:`repro.sanitizer`) proves properties of the
histories it happens to trace; this package proves the same discipline
*statically*, on every path, by composing per-function summaries over
a module-level call graph:

* :mod:`~repro.analysis.program.callgraph` — sources, functions, and
  conservative name-based call resolution.
* :mod:`~repro.analysis.program.summaries` — per-function facts: lock
  acquisition sequences, release discipline, blocking-I/O sites, trace
  emission, and cache writes/invalidations.
* :mod:`~repro.analysis.program.passes` — the QA801–QA805 passes.
* :mod:`~repro.analysis.program.effects` — the interprocedural
  MVCC-effect passes QA806–QA810 (snapshot visibility, version
  stamping, staleness-gated caches, watermark reclaim, read-only
  compiled closures).
* :mod:`~repro.analysis.program.baseline` — the committed suppression
  file that keeps `repro lint --program` green on the current tree.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.program.baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    unresolvable_entries,
)
from repro.analysis.program.callgraph import (
    SCOPE_PACKAGES,
    build_call_graph,
    default_sources,
    sources_from_paths,
)
from repro.analysis.program.passes import (
    PASS_NAMES,
    Program,
    run_passes,
)
from repro.analysis.program.summaries import summarize

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "PASS_NAMES",
    "SCOPE_PACKAGES",
    "BaselineEntry",
    "Program",
    "ProgramLintReport",
    "analyze_program",
    "analyze_program_report",
    "analyze_program_sources",
    "apply_baseline",
    "load_baseline",
    "unresolvable_entries",
]


def build_program(sources: Mapping[str, str]) -> Program:
    """Parse + summarize a source mapping into a pass-ready Program."""
    graph, failures = build_call_graph(sources)
    if failures:
        module, error = failures[0]
        raise SyntaxError(f"cannot parse {module}: {error}")
    return Program(graph, summarize(graph))


def analyze_program_sources(
    sources: Mapping[str, str],
    passes: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Run the QA8xx passes over an explicit source mapping (tests)."""
    selected = None if passes is None else set(passes)
    return run_passes(build_program(sources), selected)


@dataclass
class ProgramLintReport:
    """One ``--program`` run: kept findings plus baseline health.

    ``diagnostics`` is what the gate fires on (new findings only, when
    a baseline was applied).  ``stale`` entries matched no diagnostic
    this run and ``unresolvable`` entries no longer name any function
    or class in the tree — both mean the baseline has drifted from the
    code and should be pruned.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0
    stale: list[BaselineEntry] = field(default_factory=list)
    unresolvable: list[BaselineEntry] = field(default_factory=list)


def analyze_program_report(
    paths: Iterable[str | Path] | None = None,
    baseline: str | Path | None = DEFAULT_BASELINE_PATH,
    passes: Iterable[str] | None = None,
) -> ProgramLintReport:
    """Run the analyzer over the engine tree (or explicit ``paths``).

    Diagnostics matching the baseline file are suppressed; pass
    ``baseline=None`` to see everything.
    """
    sources = (
        default_sources()
        if paths is None
        else sources_from_paths(paths)
    )
    program = build_program(sources)
    selected = None if passes is None else set(passes)
    diagnostics = run_passes(program, selected)
    if baseline is None:
        return ProgramLintReport(diagnostics=diagnostics)
    entries = load_baseline(baseline)
    kept, suppressed, stale = apply_baseline(diagnostics, entries)
    unresolvable = unresolvable_entries(
        entries, set(program.summaries)
    )
    # an entry that names nothing is reported once, as unresolvable
    # (it is necessarily stale too)
    stale = [e for e in stale if e not in unresolvable]
    return ProgramLintReport(
        diagnostics=kept,
        suppressed=suppressed,
        stale=stale,
        unresolvable=unresolvable,
    )


def analyze_program(
    paths: Iterable[str | Path] | None = None,
    baseline: str | Path | None = DEFAULT_BASELINE_PATH,
    passes: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """The kept diagnostics of :func:`analyze_program_report`."""
    return analyze_program_report(paths, baseline, passes).diagnostics
