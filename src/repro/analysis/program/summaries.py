"""Per-function fact extraction for the whole-program passes.

Each analyzed function is reduced to a :class:`FunctionSummary`: the
ordered stream of events the passes care about (lock/transaction
acquisitions, calls, blocking-I/O sites), plus function-level facts
(does it release in an exception handler, does it emit a sanitizer
trace event, which ``self`` attributes does it mutate, which caches
does it define/write/invalidate).

The extraction is purely syntactic and over-approximating: branches are
flattened in source order, and a local alias ``cache = self._cache``
is resolved one level deep so ``cache.put(...)`` still counts as a
write to ``self._cache``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.program.callgraph import CallGraph, FunctionInfo

#: blocking lock-acquisition methods (try_acquire fails instead of
#: waiting and cannot leak a granted-then-lost resource silently)
ACQUIRE_ATTRS = {"acquire", "acquire_many"}

#: a call to any of these ends the held-lock region of a transaction
#: ("release" is the snapshot-release verb: the timestamp oracle pairs
#: begin()/release() the way the lock manager pairs acquire/release_all)
RELEASE_NAMES = {"commit", "abort", "release_all", "release"}

#: context-manager factories that release on exit (safe `with` blocks)
RELEASING_MANAGERS = {"transaction"}

#: self-attribute method calls that mutate the receiver's state
MUTATOR_ATTRS = {
    "add",
    "append",
    "clear",
    "delete",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "put",
    "remove",
    "setdefault",
    "store",
    "update",
}

#: cache classes whose writes QA805 audits
CACHE_CLASSES = {"LRUCache", "EpochKeyedCache", "DependencyTrackingCache"}

#: operations that count as invalidating a cache attribute
INVALIDATION_ATTRS = {
    "bump_epoch",
    "clear",
    "invalidate",
    "invalidate_all",
    "invalidate_members",
}

#: ``charge(...)`` kinds that mark a record/page-level storage mutation
MUTATION_CHARGES = {"record_write", "page_write"}

#: constructors whose instances hold *record* data (the effect passes
#: treat attrs initialized to these — or to plain container literals —
#: as versioned storage once the class owns a :class:`VersionStore`)
STORAGE_CLASSES = {
    "HeapFile",
    "ColumnTable",
    "BPlusTree",
    "LSMTree",
    "BDBStore",
}


@dataclass
class Event:
    """One ordered event in a function body."""

    kind: str  # "acquire" | "call" | "io"
    line: int
    #: acquire: the lock-resource expression text (None for
    #: acquire_many bundles and plain txn begins)
    token: str | None = None
    #: acquire: "lock" | "txn"; io: "wal-fsync" | "gremlin-submit" | ...
    detail: str | None = None
    #: acquire: unparsed first (txn-id) argument of the acquire call
    txn_arg: str | None = None
    #: call: bare callee name
    callee: str | None = None
    #: the local name the call result was assigned to, if any
    bound: str | None = None
    #: inside a `with <releasing manager>()` block
    with_safe: bool = False


@dataclass
class FunctionSummary:
    info: FunctionInfo
    events: list[Event] = field(default_factory=list)
    #: a Try handler or finally block calls abort/release_all
    has_release_handler: bool = False
    #: emits runtime.TRACE.write(...) somewhere in the body
    trace_write: bool = False
    #: string literals passed to charge(...)
    charges: set[str] = field(default_factory=set)
    #: self attributes mutated in place (aug-assign, subscript
    #: assignment, or a mutator-method call on `self.<attr>`)
    self_mutations: set[str] = field(default_factory=set)
    #: names appearing in `return` expressions
    returns_names: set[str] = field(default_factory=set)
    #: self attr -> cache class name, for `self.x = LRUCache(...)`
    cache_defs: dict[str, str] = field(default_factory=dict)
    #: self attrs written through .put()/.store()
    cache_writes: set[str] = field(default_factory=set)
    #: self attrs invalidated (bump_epoch/invalidate*/clear)
    cache_invalidations: set[str] = field(default_factory=set)
    #: self attr -> on_reclaim callback attr, for
    #: ``self.x = VersionStore(..., on_reclaim=self._cb)`` (None when
    #: the store is built without a reclaim callback)
    version_store_defs: dict[str, str | None] = field(
        default_factory=dict
    )
    #: self attrs initialized to container literals ({}/[]/set()) or
    #: storage-class constructors — candidate record containers
    container_defs: set[str] = field(default_factory=set)
    #: self attr (or alias root) -> method names called on it
    attr_calls: dict[str, set[str]] = field(default_factory=dict)
    #: self attrs read through a subscript load (``self._rows[k]``)
    attr_subscript_loads: set[str] = field(default_factory=set)
    #: self attrs iterated (for-loop or comprehension source)
    attr_iterations: set[str] = field(default_factory=set)

    @property
    def ref(self) -> str:
        return self.info.ref

    def acquire_events(self) -> list[Event]:
        return [e for e in self.events if e.kind == "acquire"]


def summarize(graph: CallGraph) -> dict[str, FunctionSummary]:
    """ref -> summary for every function in the call graph."""
    return {
        info.ref: _summarize_function(info) for info in graph.functions
    }


def _summarize_function(info: FunctionInfo) -> FunctionSummary:
    summary = FunctionSummary(info)
    walker = _Walker(summary)
    for stmt in info.node.body:
        walker.visit_stmt(stmt)
    return summary


class _Walker:
    """Single-pass, order-preserving extraction over one function."""

    def __init__(self, summary: FunctionSummary) -> None:
        self.summary = summary
        self.with_depth = 0
        #: local name -> self attribute it aliases
        self.aliases: dict[str, str] = {}
        #: local name -> self attribute *rooting* the value it was
        #: assigned from (``index = self._indexes.get(c)`` roots at
        #: ``_indexes``); used only by the effect facts so the looser
        #: resolution cannot disturb the QA805 cache accounting
        self.root_aliases: dict[str, str] = {}

    # -- statements ---------------------------------------------------------

    def visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are summarized separately
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, ast.Assign):
            self._visit_assign(node)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._record_cache_def(node.target, node.value)
                self.visit_expr(node.value)
            return
        if isinstance(node, ast.AugAssign):
            attr = _self_attr_root(node.target)
            if attr is not None:
                self.summary.self_mutations.add(attr)
            self.visit_expr(node.value)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                for name in ast.walk(node.value):
                    if isinstance(name, ast.Name):
                        self.summary.returns_names.add(name.id)
                self.visit_expr(node.value)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._record_iteration(node.iter)
            root = _self_attr_root(node.iter)
            if root is not None:
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        self.root_aliases[target.id] = root
            self.visit_expr(node.iter)
            for stmt in node.body:
                self.visit_stmt(stmt)
            for stmt in node.orelse:
                self.visit_stmt(stmt)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            safe = any(
                isinstance(item.context_expr, ast.Call)
                and _callee_name(item.context_expr)
                in RELEASING_MANAGERS
                for item in node.items
            )
            for item in node.items:
                self.visit_expr(item.context_expr)
            if safe:
                self.with_depth += 1
            for stmt in node.body:
                self.visit_stmt(stmt)
            if safe:
                self.with_depth -= 1
            return
        if isinstance(node, ast.Try):
            for stmt in node.body:
                self.visit_stmt(stmt)
            for handler in node.handlers:
                if _contains_release_call(handler.body):
                    self.summary.has_release_handler = True
                for stmt in handler.body:
                    self.visit_stmt(stmt)
            for stmt in node.orelse:
                self.visit_stmt(stmt)
            if _contains_release_call(node.finalbody):
                self.summary.has_release_handler = True
            for stmt in node.finalbody:
                self.visit_stmt(stmt)
            return
        # generic statement: walk expressions first, then sub-statements
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self.visit_stmt(child)
            elif isinstance(child, ast.expr):
                self.visit_expr(child)
            elif isinstance(child, ast.excepthandler):
                for stmt in child.body:
                    self.visit_stmt(stmt)

    def _visit_assign(self, node: ast.Assign) -> None:
        bound: str | None = None
        if len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                bound = target.id
                alias = _self_attr_of(node.value)
                if alias is not None:
                    self.aliases[target.id] = alias
                root = _self_attr_root(node.value)
                if root is not None:
                    self.root_aliases[target.id] = root
            else:
                attr = _self_attr_root(target)
                if attr is not None and isinstance(
                    target, (ast.Subscript,)
                ):
                    self.summary.self_mutations.add(attr)
            self._record_cache_def(target, node.value)
            self._record_storage_def(target, node.value)
        else:
            for target in node.targets:
                attr = _self_attr_root(target)
                if attr is not None and isinstance(target, ast.Subscript):
                    self.summary.self_mutations.add(attr)
        self.visit_expr(node.value, bound=bound)

    def _record_cache_def(
        self, target: ast.expr, value: ast.expr
    ) -> None:
        if not isinstance(value, ast.Call):
            return
        cls = _callee_name(value)
        if cls not in CACHE_CLASSES:
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            assert cls is not None
            self.summary.cache_defs[target.attr] = cls

    def _record_storage_def(
        self, target: ast.expr, value: ast.expr
    ) -> None:
        """Classify ``self.X = <container/VersionStore/storage ctor>``.

        Derived metadata built by comprehensions is deliberately *not* a
        record container: it never carries versioned record state.
        """
        attr = _self_attr_of(target)
        if attr is None:
            return
        summary = self.summary
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            summary.container_defs.add(attr)
            return
        if not isinstance(value, ast.Call):
            return
        cls = _callee_name(value)
        if cls in ("dict", "list", "set") and not value.args:
            summary.container_defs.add(attr)
        elif cls in STORAGE_CLASSES:
            summary.container_defs.add(attr)
        elif cls == "VersionStore":
            callback: str | None = None
            for keyword in value.keywords:
                if keyword.arg == "on_reclaim":
                    callback = _self_attr_of(keyword.value)
            summary.version_store_defs[attr] = callback

    # -- expressions ---------------------------------------------------------

    def visit_expr(self, node: ast.expr, bound: str | None = None) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node, bound)
            return
        if isinstance(node, ast.Lambda):
            self.visit_expr(node.body)
            return
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Load
        ):
            attr = _self_attr_root(node)
            if attr is not None:
                self.summary.attr_subscript_loads.add(attr)
        if isinstance(
            node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            # generators are not expr children: visit their sources and
            # guards explicitly so calls inside them are still events
            for generator in node.generators:
                self._record_iteration(generator.iter)
                self.visit_expr(generator.iter)
                for guard in generator.ifs:
                    self.visit_expr(guard)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.visit_expr(child)

    def _record_iteration(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                attr = _self_attr_of(sub)
                if attr is not None:
                    self.summary.attr_iterations.add(attr)
            elif isinstance(sub, ast.Name):
                root = self.root_aliases.get(sub.id)
                if root is not None:
                    self.summary.attr_iterations.add(root)

    def _visit_call(self, node: ast.Call, bound: str | None) -> None:
        name = _callee_name(node)
        # arguments first: inner calls happen before the outer one
        for arg in node.args:
            self.visit_expr(arg)
        for keyword in node.keywords:
            self.visit_expr(keyword.value)
        if isinstance(node.func, ast.Attribute):
            self.visit_expr(node.func.value)
        if name is None:
            return
        summary = self.summary
        safe = self.with_depth > 0
        if name in ACQUIRE_ATTRS and isinstance(node.func, ast.Attribute):
            summary.events.append(
                Event(
                    kind="acquire",
                    line=node.lineno,
                    token=_resource_token(node),
                    detail="lock",
                    txn_arg=(
                        ast.unparse(node.args[0]) if node.args else None
                    ),
                    bound=bound,
                    with_safe=safe,
                )
            )
            return
        if name == "begin" and isinstance(node.func, ast.Attribute):
            summary.events.append(
                Event(
                    kind="acquire",
                    line=node.lineno,
                    detail="txn",
                    bound=bound,
                    with_safe=safe,
                )
            )
            return
        if name == "charge" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                summary.charges.add(first.value)
        if name == "write" and isinstance(node.func, ast.Attribute):
            receiver = ast.unparse(node.func.value)
            if receiver.endswith("TRACE"):
                summary.trace_write = True
        io_kind = _io_kind(node)
        if io_kind is not None:
            summary.events.append(
                Event(kind="io", line=node.lineno, detail=io_kind)
            )
        self._record_mutation(node, name)
        self._record_cache_op(node, name)
        self._record_attr_call(node, name)
        summary.events.append(
            Event(
                kind="call",
                line=node.lineno,
                callee=name,
                bound=bound,
                with_safe=safe,
            )
        )

    def _record_mutation(self, node: ast.Call, name: str) -> None:
        if name not in MUTATOR_ATTRS:
            return
        if not isinstance(node.func, ast.Attribute):
            return
        attr = _self_attr_root(node.func.value)
        if attr is not None:
            self.summary.self_mutations.add(attr)

    def _record_attr_call(self, node: ast.Call, name: str) -> None:
        """``self.X.m(...)`` (or via a local alias) -> attr_calls[X] += m."""
        if not isinstance(node.func, ast.Attribute):
            return
        receiver = node.func.value
        attr: str | None = None
        if isinstance(receiver, ast.Name):
            attr = self.root_aliases.get(
                receiver.id, self.aliases.get(receiver.id)
            )
        else:
            attr = _self_attr_root(receiver)
        if attr is not None:
            self.summary.attr_calls.setdefault(attr, set()).add(name)

    def _record_cache_op(self, node: ast.Call, name: str) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        receiver = node.func.value
        attr: str | None = None
        if isinstance(receiver, ast.Name):
            attr = self.aliases.get(receiver.id)
        else:
            attr = _self_attr_of(receiver)
        if attr is None:
            return
        if name in ("put", "store"):
            self.summary.cache_writes.add(attr)
        elif name in INVALIDATION_ATTRS:
            self.summary.cache_invalidations.add(attr)


def _callee_name(call: ast.expr) -> str | None:
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _resource_token(call: ast.Call) -> str | None:
    """The lock-resource expression, mirroring the QA501 pass.

    ``acquire(txn_id, resource, mode)`` -> the second argument;
    ``acquire_many`` bundles sort internally and contribute no single
    resource token (None).
    """
    func = call.func
    assert isinstance(func, ast.Attribute)
    if func.attr == "acquire_many":
        return None
    if len(call.args) >= 2:
        return ast.unparse(call.args[1])
    if len(call.args) == 1:
        return ast.unparse(call.args[0])
    return ast.unparse(func.value)


def _io_kind(call: ast.Call) -> str | None:
    """Classify a call as simulated blocking I/O, if it is one."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "commit":
        receiver = ast.unparse(func.value).lower()
        if "wal" in receiver:
            return "wal-fsync"
        return None
    if func.attr == "submit":
        return "gremlin-submit"
    if func.attr == "checkpoint":
        return "checkpoint"
    return None


def _self_attr_of(node: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_attr_root(node: ast.expr) -> str | None:
    """The first attribute of a ``self.X...`` chain, skipping through
    calls and subscripts (``self.X.setdefault(k, set()).add(v)`` and
    ``self.X[k]`` both root at ``X``)."""
    current: ast.expr = node
    while True:
        if isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Subscript):
            current = current.value
        else:
            break
    chain: list[str] = []
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        inner = current.value
        if isinstance(inner, (ast.Call, ast.Subscript)):
            while isinstance(inner, (ast.Call, ast.Subscript)):
                inner = (
                    inner.func
                    if isinstance(inner, ast.Call)
                    else inner.value
                )
        current = inner
    if isinstance(current, ast.Name) and current.id == "self" and chain:
        return chain[-1]
    return None


def _contains_release_call(statements: list[ast.stmt]) -> bool:
    for stmt in statements:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _callee_name(node)
                if name in ("abort", "release_all", "release"):
                    return True
    return False
