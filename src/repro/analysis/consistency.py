"""Cross-dialect consistency: one operation, one schema footprint.

The paper's core claim is a *fair* comparison: every system answers the
same workload.  That only holds if, say, ``person_profile`` touches the
person->place relationship in all four dialects, not just in three.
This pass compares the canonical schema footprints the dialect walkers
computed, after :meth:`SchemaCatalog.close_footprint` normalisation
(dialects encode endpoints differently — a SQL FK column names no
tables, a SPARQL predicate names no classes — so raw footprints are
closed over relationship endpoints first).

Read operations must agree exactly (QA401).  Insert operations are
allowed to diverge, but only *declaredly*: each dialect's extra
footprint beyond the cross-dialect common core must equal its entry in
:data:`DECLARED_INSERT_DELTAS` (the RDF connector intentionally
persists ``studyAt`` / ``workAt`` organisation facts the others drop;
SQL and SPARQL keep comment tags).  Any undeclared surplus — or a
declared delta that stopped materialising — is QA403.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.cypher import AnalysisResult
from repro.analysis.diagnostics import Diagnostic, SourceLocation, make
from repro.analysis.schema import SchemaCatalog, default_catalog

#: the 13 read operations every connector must implement identically
READ_OPERATIONS: tuple[str, ...] = (
    "point_lookup",
    "one_hop",
    "two_hop",
    "shortest_path",
    "person_profile",
    "person_recent_posts",
    "person_friends",
    "message_content",
    "message_creator",
    "message_forum",
    "message_replies",
    "complex_two_hop",
    "friends_recent_posts",
)

#: the 7 LDBC insert operations (INS1-INS8; both likes share one)
INSERT_OPERATIONS: tuple[str, ...] = (
    "add_person",
    "add_friendship",
    "add_forum",
    "add_forum_membership",
    "add_post",
    "add_comment",
    "add_like",
)

#: (dialect, operation) -> the *intended* closed-footprint surplus over
#: the cross-dialect common core.  Pairs not listed must match the core
#: exactly.  QA403 fires on any disagreement in either direction.
DECLARED_INSERT_DELTAS: dict[tuple[str, str], frozenset[str]] = {
    # the RDF connector persists university/company facts the
    # property-graph and SQL connectors drop on insert
    ("sparql", "add_person"): frozenset(
        {"organisation", "studyAt", "workAt"}
    ),
    # SQL (comment_tag rows) and SPARQL (snb:hasTag triples) keep the
    # comment's tags; Cypher and Gremlin drop them
    ("sql", "add_comment"): frozenset({"hasTag", "tag"}),
    ("sparql", "add_comment"): frozenset({"hasTag", "tag"}),
}


def check_consistency(
    per_dialect: Mapping[str, Mapping[str, AnalysisResult]],
    catalog: SchemaCatalog | None = None,
) -> list[Diagnostic]:
    """Compare closed footprints across dialects, per read operation.

    ``per_dialect`` maps dialect -> operation -> walker result.
    """
    catalog = catalog or default_catalog()
    out: list[Diagnostic] = []
    for operation in READ_OPERATIONS:
        location = SourceLocation("cross", operation)
        closed: dict[str, frozenset[str]] = {}
        for dialect, operations in per_dialect.items():
            result = operations.get(operation)
            if result is None:
                out.append(make(
                    "QA402",
                    f"{dialect} has no catalog entry for {operation}",
                    location,
                ))
            else:
                closed[dialect] = catalog.close_footprint(result.footprint)
        if len(set(closed.values())) <= 1:
            continue
        common = frozenset.intersection(*closed.values())
        details = "; ".join(
            f"{dialect} adds {{{', '.join(sorted(extra))}}}"
            if (extra := footprint - common)
            else f"{dialect} lacks elements the others touch"
            for dialect, footprint in sorted(closed.items())
        )
        out.append(make(
            "QA401",
            f"schema footprints diverge (common core "
            f"{{{', '.join(sorted(common))}}}): {details}",
            location,
        ))
    return out


def check_insert_consistency(
    per_dialect: Mapping[str, Mapping[str, AnalysisResult]],
    catalog: SchemaCatalog | None = None,
) -> list[Diagnostic]:
    """QA403: each dialect's insert footprint may only exceed the
    common core by its declared delta."""
    catalog = catalog or default_catalog()
    out: list[Diagnostic] = []
    for operation in INSERT_OPERATIONS:
        location = SourceLocation("cross", operation)
        closed: dict[str, frozenset[str]] = {}
        for dialect, operations in per_dialect.items():
            result = operations.get(operation)
            if result is None:
                out.append(make(
                    "QA402",
                    f"{dialect} has no catalog entry for {operation}",
                    location,
                ))
            else:
                closed[dialect] = catalog.close_footprint(result.footprint)
        if not closed:
            continue
        common = frozenset.intersection(*closed.values())
        for dialect, footprint in sorted(closed.items()):
            declared = DECLARED_INSERT_DELTAS.get(
                (dialect, operation), frozenset()
            )
            actual = footprint - common
            if actual == declared:
                continue
            undeclared = actual - declared
            missing = declared - actual
            parts = []
            if undeclared:
                parts.append(
                    f"undeclared surplus "
                    f"{{{', '.join(sorted(undeclared))}}}"
                )
            if missing:
                parts.append(
                    f"declared delta not present "
                    f"{{{', '.join(sorted(missing))}}}"
                )
            out.append(make(
                "QA403",
                f"{dialect} insert footprint deviates from the "
                f"common core: {'; '.join(parts)}",
                location,
            ))
    return out
