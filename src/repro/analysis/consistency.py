"""Cross-dialect consistency: one operation, one schema footprint.

The paper's core claim is a *fair* comparison: every system answers the
same workload.  That only holds if, say, ``person_profile`` touches the
person->place relationship in all four dialects, not just in three.
This pass compares the canonical schema footprints the dialect walkers
computed, after :meth:`SchemaCatalog.close_footprint` normalisation
(dialects encode endpoints differently — a SQL FK column names no
tables, a SPARQL predicate names no classes — so raw footprints are
closed over relationship endpoints first).

Only the read operations are compared.  The insert operations
legitimately diverge today (the RDF connector persists ``speaks`` /
``email`` / ``studyAt`` facts the others drop) — see ROADMAP.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.cypher import AnalysisResult
from repro.analysis.diagnostics import Diagnostic, SourceLocation, make
from repro.analysis.schema import SchemaCatalog, default_catalog

#: the 13 read operations every connector must implement identically
READ_OPERATIONS: tuple[str, ...] = (
    "point_lookup",
    "one_hop",
    "two_hop",
    "shortest_path",
    "person_profile",
    "person_recent_posts",
    "person_friends",
    "message_content",
    "message_creator",
    "message_forum",
    "message_replies",
    "complex_two_hop",
    "friends_recent_posts",
)


def check_consistency(
    per_dialect: Mapping[str, Mapping[str, AnalysisResult]],
    catalog: SchemaCatalog | None = None,
) -> list[Diagnostic]:
    """Compare closed footprints across dialects, per read operation.

    ``per_dialect`` maps dialect -> operation -> walker result.
    """
    catalog = catalog or default_catalog()
    out: list[Diagnostic] = []
    for operation in READ_OPERATIONS:
        location = SourceLocation("cross", operation)
        closed: dict[str, frozenset[str]] = {}
        for dialect, operations in per_dialect.items():
            result = operations.get(operation)
            if result is None:
                out.append(make(
                    "QA402",
                    f"{dialect} has no catalog entry for {operation}",
                    location,
                ))
            else:
                closed[dialect] = catalog.close_footprint(result.footprint)
        if len(set(closed.values())) <= 1:
            continue
        common = frozenset.intersection(*closed.values())
        details = "; ".join(
            f"{dialect} adds {{{', '.join(sorted(extra))}}}"
            if (extra := footprint - common)
            else f"{dialect} lacks elements the others touch"
            for dialect, footprint in sorted(closed.items())
        )
        out.append(make(
            "QA401",
            f"schema footprints diverge (common core "
            f"{{{', '.join(sorted(common))}}}): {details}",
            location,
        ))
    return out
