"""Static analysis of SPARQL queries against the schema catalog.

Entity typing works by *narrowing*: every variable starts as "any
entity" and each pattern it appears in intersects the set — ``rdf:type``
by the class, a relationship predicate by its endpoints, a property
predicate by the entities that own the property.  An empty final set
means the patterns contradict the schema (QA202 when a relationship
participated, QA103 otherwise).  Narrowing is order-independent, so the
checks run after all patterns have been seen.

Reified-statement predicates (``snb:knowsFrom`` …) only appear in insert
triples, never in catalog queries; they are recognised for footprint
purposes but their subjects are not entity-typed.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.cypher import AnalysisResult
from repro.analysis.diagnostics import SourceLocation, make
from repro.analysis.schema import SchemaCatalog, default_catalog
from repro.rdf.sparql import parser as sp
from repro.rdf.sparql.parser import SparqlParseError, parse


def analyze_sparql(
    operation: str,
    queries: Sequence[str],
    catalog: SchemaCatalog | None = None,
) -> AnalysisResult:
    catalog = catalog or default_catalog()
    result = AnalysisResult()
    for index, text in enumerate(queries):
        location = SourceLocation("sparql", operation, index)
        try:
            query = parse(text)
        except SparqlParseError as exc:
            result.diagnostics.append(make("QA105", str(exc), location))
            continue
        _check_query(query, location, catalog, result)
    return result


def _check_query(
    query: sp.SparqlQuery,
    location: SourceLocation,
    catalog: SchemaCatalog,
    result: AnalysisResult,
) -> None:
    out = result.diagnostics
    all_entities = frozenset(catalog.entities)

    env: dict[str, frozenset[str]] = {}  # entity-typed vars
    rel_constrained: set[str] = set()  # vars narrowed by a relationship
    value_types: dict[str, str] = {}  # value vars from property objects
    bound: set[str] = set()

    def narrow(term: sp.Term, allowed: frozenset[str]) -> None:
        if isinstance(term, sp.Var):
            env[term.name] = env.get(term.name, all_entities) & allowed

    for pattern in query.patterns:
        for term in (pattern.s, pattern.o):
            if isinstance(term, sp.Var):
                bound.add(term.name)
        predicate = pattern.p
        if not isinstance(predicate, sp.Iri):
            continue  # variable predicates are untypable; allow them
        name = predicate.value
        if name == "rdf:type":
            if not isinstance(pattern.o, sp.Iri):
                continue
            entities = catalog.sparql_classes.get(pattern.o.value)
            if entities is None:
                out.append(make(
                    "QA101",
                    f"unknown class {pattern.o.value}",
                    location,
                ))
                continue
            narrow(pattern.s, entities)
        elif name in catalog.sparql_rel_predicates:
            rel = catalog.relationships[catalog.sparql_rel_predicates[name]]
            result.footprint.add(rel.name)
            narrow(pattern.s, rel.src)
            narrow(pattern.o, rel.dst)
            for term in (pattern.s, pattern.o):
                if isinstance(term, sp.Var):
                    rel_constrained.add(term.name)
        elif name in catalog.sparql_prop_predicates:
            owners, prop_type = catalog.sparql_prop_predicates[name]
            narrow(pattern.s, owners)
            if isinstance(pattern.o, sp.Var):
                value_types[pattern.o.name] = prop_type
            elif isinstance(pattern.o, sp.LiteralTerm):
                actual = _literal_type(pattern.o.value)
                if actual != prop_type:
                    out.append(make(
                        "QA201",
                        f"{name} is {prop_type}, given {actual} "
                        f"literal {pattern.o.value!r}",
                        location,
                    ))
        elif name in catalog.sparql_statement_predicates:
            result.footprint.add(catalog.sparql_statement_predicates[name])
        else:
            out.append(make(
                "QA102", f"unknown predicate {name}", location,
            ))

    # contradictions: a variable no entity can satisfy
    for var, entities in env.items():
        if not entities:
            code = "QA202" if var in rel_constrained else "QA103"
            out.append(make(
                code,
                f"no entity satisfies every constraint on ?{var}",
                location,
            ))
        elif entities != all_entities:
            result.footprint.update(entities)

    # unbound variables in SELECT / FILTER / ORDER BY
    for item in query.items:
        if item.var is not None and item.var.name not in bound:
            out.append(make(
                "QA107", f"?{item.var.name} is not bound", location,
            ))
    for order in query.order_by:
        if order.var.name not in bound:
            out.append(make(
                "QA107", f"?{order.var.name} is not bound", location,
            ))
    for filt in query.filters:
        _check_filter(filt.expr, bound, value_types, location, out)

    _check_cartesian(query, location, out)


def _literal_type(value: object) -> str:
    if isinstance(value, bool):
        return "str"
    if isinstance(value, (int, float)):
        return "int"
    return "str"


def _check_filter(
    expr: sp.FilterExpr,
    bound: set[str],
    value_types: dict[str, str],
    location: SourceLocation,
    out: list,
) -> None:
    if isinstance(expr, sp.BoolOp):
        _check_filter(expr.left, bound, value_types, location, out)
        _check_filter(expr.right, bound, value_types, location, out)
    elif isinstance(expr, sp.NotOp):
        _check_filter(expr.operand, bound, value_types, location, out)
    elif isinstance(expr, sp.Comparison):
        _check_terms(
            (expr.left, expr.right), bound, value_types, location, out
        )
    elif isinstance(expr, sp.InFilter):
        _check_terms(
            (expr.needle, *expr.items), bound, value_types, location, out
        )


def _check_terms(
    terms: tuple[sp.Term, ...],
    bound: set[str],
    value_types: dict[str, str],
    location: SourceLocation,
    out: list,
) -> None:
    declared: str | None = None
    for term in terms:
        if isinstance(term, sp.Var):
            if term.name not in bound:
                out.append(make(
                    "QA107", f"?{term.name} is not bound", location,
                ))
            elif declared is None:
                declared = value_types.get(term.name)
    if declared is None:
        return
    for term in terms:
        if isinstance(term, sp.LiteralTerm):
            actual = _literal_type(term.value)
            if actual != declared:
                out.append(make(
                    "QA201",
                    f"variable is {declared}, compared with {actual} "
                    f"literal {term.value!r}",
                    location,
                ))


def _check_cartesian(
    query: sp.SparqlQuery,
    location: SourceLocation,
    out: list,
) -> None:
    """Triple patterns sharing no variable with the rest of the query
    multiply its solutions — unless their component is anchored by a
    parameter or concrete IRI."""
    if not query.patterns:
        return
    parent = list(range(len(query.patterns)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    by_var: dict[str, int] = {}
    anchored: dict[int, bool] = {}
    for i, pattern in enumerate(query.patterns):
        for term in (pattern.s, pattern.p, pattern.o):
            if isinstance(term, sp.Var):
                if term.name in by_var:
                    root_a, root_b = find(i), find(by_var[term.name])
                    parent[root_a] = root_b
                by_var[term.name] = i
            elif isinstance(term, sp.ParamTerm):
                anchored[i] = True
            elif isinstance(term, sp.Iri) and term is pattern.s:
                anchored[i] = True  # a concrete subject IRI
    components: dict[int, bool] = {}
    for i in range(len(query.patterns)):
        root = find(i)
        components[root] = components.get(root, False) or anchored.get(
            i, False
        )
    if len(components) > 1 and not all(components.values()):
        out.append(make(
            "QA301",
            f"{len(components)} disconnected pattern groups, not all "
            "anchored (cartesian product)",
            location,
        ))
