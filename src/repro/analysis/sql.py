"""Static analysis of SQL statements against the schema catalog."""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.cypher import AnalysisResult
from repro.analysis.diagnostics import SourceLocation, make
from repro.analysis.schema import SchemaCatalog, SqlTable, default_catalog
from repro.relational.sql import ast
from repro.relational.sql.parser import SqlParseError, parse
from repro.stats import expected_table_rows, format_rows

_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}
_ARITHMETIC = {"+", "-", "*", "/"}


def analyze_sql(
    operation: str,
    queries: Sequence[str],
    catalog: SchemaCatalog | None = None,
) -> AnalysisResult:
    catalog = catalog or default_catalog()
    result = AnalysisResult()
    for index, text in enumerate(queries):
        location = SourceLocation("sql", operation, index)
        try:
            statement = parse(text)
        except SqlParseError as exc:
            result.diagnostics.append(make("QA105", str(exc), location))
            continue
        _Checker(location, catalog, result).statement(statement)
    return result


class _Checker:
    def __init__(
        self,
        location: SourceLocation,
        catalog: SchemaCatalog,
        result: AnalysisResult,
    ) -> None:
        self.location = location
        self.catalog = catalog
        self.result = result
        self.out = result.diagnostics
        #: CTE name -> declared column names (types unknown)
        self.ctes: dict[str, tuple[str, ...]] = {}

    # -- statements ---------------------------------------------------------

    def statement(self, stmt: ast.Statement) -> None:
        if isinstance(stmt, ast.Select):
            self.select(stmt)
        elif isinstance(stmt, ast.RecursiveCTE):
            self.ctes[stmt.name] = stmt.columns
            self.select(stmt.base)
            self.select(stmt.step)
            self.select(stmt.body)
        elif isinstance(stmt, ast.Insert):
            self.insert(stmt)
        elif isinstance(stmt, ast.Update):
            table = self.require_table(stmt.table)
            if table is not None:
                scope = {stmt.table: stmt.table}
                for column, value in stmt.assignments:
                    self.column(ast.ColumnRef(stmt.table, column), scope)
                    self.expr(value, scope)
                if stmt.where is not None:
                    self.expr(stmt.where, scope)
        elif isinstance(stmt, ast.Delete):
            if self.require_table(stmt.table) is not None and (
                stmt.where is not None
            ):
                self.expr(stmt.where, {stmt.table: stmt.table})
        elif isinstance(stmt, ast.CreateTable):
            self.require_table(stmt.name)
        elif isinstance(stmt, ast.CreateIndex):
            if self.require_table(stmt.table) is not None:
                self.column(
                    ast.ColumnRef(stmt.table, stmt.column),
                    {stmt.table: stmt.table},
                )

    def insert(self, stmt: ast.Insert) -> None:
        table = self.require_table(stmt.table)
        if table is None:
            return
        width = len(table.columns)
        if len(stmt.values) != width:
            self.out.append(make(
                "QA106",
                f"INSERT INTO {stmt.table} supplies {len(stmt.values)} "
                f"values for {width} columns",
                self.location,
            ))
        # a full-row insert touches every concept the table encodes
        for column in table.columns.values():
            if column.concept is not None:
                self.result.footprint.add(column.concept)

    # -- SELECT -------------------------------------------------------------

    def select(self, sel: ast.Select) -> None:
        scope: dict[str, str] = {}
        if sel.from_table is not None:
            if self.resolve_source(sel.from_table.name) is not None:
                scope[sel.from_table.binding] = sel.from_table.name
        for join in sel.joins:
            prior = dict(scope)
            if self.resolve_source(join.table.name) is not None:
                scope[join.table.binding] = join.table.name
            self.expr(join.condition, scope)
            if prior and not self.joins_new_table(
                join.condition, join.table.binding, prior
            ):
                self.out.append(make(
                    "QA301",
                    f"JOIN {join.table.name} condition does not relate "
                    "it to the preceding tables (cartesian product)",
                    self.location,
                ))
        for item in sel.items:
            self.expr(item.expr, scope)
        if sel.where is not None:
            self.expr(sel.where, scope)
        for expr in sel.group_by:
            self.expr(expr, scope)
        for order in sel.order_by:
            self.expr(order.expr, scope)

    def joins_new_table(
        self,
        condition: ast.Expr,
        new_binding: str,
        prior: dict[str, str],
    ) -> bool:
        bindings: set[str] = set()
        self.collect_bindings(condition, bindings)
        return new_binding in bindings and bool(bindings & prior.keys())

    def collect_bindings(self, expr: ast.Expr, out: set[str]) -> None:
        if isinstance(expr, ast.ColumnRef):
            if expr.table is not None:
                out.add(expr.table)
        elif isinstance(expr, ast.BinaryOp):
            self.collect_bindings(expr.left, out)
            self.collect_bindings(expr.right, out)
        elif isinstance(expr, ast.UnaryOp):
            self.collect_bindings(expr.operand, out)
        elif isinstance(expr, ast.InList):
            self.collect_bindings(expr.needle, out)
        elif isinstance(expr, ast.IsNull):
            self.collect_bindings(expr.operand, out)
        elif isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                self.collect_bindings(arg, out)

    # -- sources and columns --------------------------------------------------

    def require_table(self, name: str) -> SqlTable | None:
        """The catalog's table, or a QA104 diagnostic."""
        table = self.catalog.sql_tables.get(name)
        if table is None:
            self.out.append(make(
                "QA104", f"unknown table {name!r}", self.location,
            ))
            return None
        self.result.footprint.add(table.concept)
        return table

    def resolve_source(self, name: str) -> tuple[str, ...] | SqlTable | None:
        if name in self.ctes:
            return self.ctes[name]
        return self.require_table(name)

    def column(
        self, ref: ast.ColumnRef, scope: dict[str, str]
    ) -> str | None:
        """Validate a column reference; returns its declared type."""
        candidates: list[tuple[str, str]] = []  # (table name, column)
        if ref.table is not None:
            source = scope.get(ref.table)
            if source is None:
                self.out.append(make(
                    "QA104",
                    f"unknown table alias {ref.table!r}",
                    self.location,
                ))
                return None
            candidates.append((source, ref.column))
        else:
            candidates.extend(
                (source, ref.column) for source in scope.values()
            )
        hits: list[str | None] = []
        for source, column in candidates:
            if source in self.ctes:
                if column in self.ctes[source]:
                    hits.append(None)  # CTE column: type unknown
                continue
            table = self.catalog.sql_tables.get(source)
            if table is None:
                continue
            spec = table.columns.get(column)
            if spec is not None:
                if spec.concept is not None:
                    self.result.footprint.add(spec.concept)
                hits.append(spec.type)
        if not hits:
            self.out.append(make(
                "QA103", f"unknown column {ref}", self.location,
            ))
            return None
        return hits[0]

    # -- expressions ----------------------------------------------------------

    def expr(self, expr: ast.Expr, scope: dict[str, str]) -> None:
        if isinstance(expr, ast.ColumnRef):
            self.column(expr, scope)
        elif isinstance(expr, ast.BinaryOp):
            if expr.op in _COMPARISONS:
                self.comparison(expr, scope)
            self.expr(expr.left, scope)
            self.expr(expr.right, scope)
        elif isinstance(expr, ast.UnaryOp):
            self.expr(expr.operand, scope)
        elif isinstance(expr, ast.InList):
            self.expr(expr.needle, scope)
            for item in expr.items:
                self.expr(item, scope)
        elif isinstance(expr, ast.IsNull):
            self.expr(expr.operand, scope)
        elif isinstance(expr, ast.FuncCall):
            if expr.name == "shortest_path_len":
                self.shortest_path_len(expr)
                return
            for arg in expr.args:
                self.expr(arg, scope)

    def comparison(self, expr: ast.BinaryOp, scope: dict[str, str]) -> None:
        sides = (expr.left, expr.right)
        for column_side, other in (sides, sides[::-1]):
            if not isinstance(column_side, ast.ColumnRef):
                continue
            declared = self.peek_column_type(column_side, scope)
            if declared is None or not isinstance(other, ast.Literal):
                continue
            value = other.value
            if value is None:
                continue
            actual = (
                "int"
                if isinstance(value, (int, float))
                and not isinstance(value, bool)
                else "str"
            )
            if actual != declared:
                self.out.append(make(
                    "QA201",
                    f"column {column_side} is {declared}, compared "
                    f"with {actual} literal {value!r}",
                    self.location,
                ))
        for side in sides:
            if self.wraps_column(side):
                self.out.append(make(
                    "QA302",
                    "comparison applies an expression to a column; "
                    "no index can serve it"
                    + self.scan_estimate(side, scope),
                    self.location,
                ))

    def scan_estimate(self, expr: ast.Expr, scope: dict[str, str]) -> str:
        """Expected full-scan size for a non-sargable filter's table."""
        ref = self.first_column(expr)
        if ref is None:
            return ""
        sources = (
            [scope.get(ref.table)] if ref.table is not None
            else list(scope.values())
        )
        for source in sources:
            if source is None or source in self.ctes:
                continue
            table = self.catalog.sql_tables.get(source)
            if table is None or ref.column not in table.columns:
                continue
            rows = expected_table_rows(source)
            if rows is not None:
                return (
                    f" (forces a scan of {source}: {format_rows(rows)} "
                    f"rows at SF10)"
                )
        return ""

    def first_column(self, expr: ast.Expr) -> ast.ColumnRef | None:
        if isinstance(expr, ast.ColumnRef):
            return expr
        if isinstance(expr, ast.BinaryOp):
            return self.first_column(expr.left) or self.first_column(
                expr.right
            )
        if isinstance(expr, (ast.UnaryOp, ast.IsNull)):
            return self.first_column(expr.operand)
        if isinstance(expr, ast.InList):
            return self.first_column(expr.needle)
        if isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                found = self.first_column(arg)
                if found is not None:
                    return found
        return None

    def peek_column_type(
        self, ref: ast.ColumnRef, scope: dict[str, str]
    ) -> str | None:
        """Column type without emitting diagnostics (expr() validates)."""
        sources = (
            [scope.get(ref.table)] if ref.table is not None
            else list(scope.values())
        )
        for source in sources:
            if source is None or source in self.ctes:
                continue
            table = self.catalog.sql_tables.get(source)
            if table is not None and ref.column in table.columns:
                return table.columns[ref.column].type
        return None

    def wraps_column(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.FuncCall):
            if expr.name in {"min", "max", "count", "sum", "avg"}:
                return False  # aggregates are not per-row filters
            return any(self.contains_column(arg) for arg in expr.args)
        if isinstance(expr, ast.BinaryOp) and expr.op in _ARITHMETIC:
            return self.contains_column(expr.left) or self.contains_column(
                expr.right
            )
        return False

    def contains_column(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.ColumnRef):
            return True
        if isinstance(expr, ast.BinaryOp):
            return self.contains_column(expr.left) or self.contains_column(
                expr.right
            )
        if isinstance(expr, (ast.UnaryOp, ast.IsNull)):
            return self.contains_column(expr.operand)
        if isinstance(expr, ast.InList):
            return self.contains_column(expr.needle)
        if isinstance(expr, ast.FuncCall):
            return any(self.contains_column(arg) for arg in expr.args)
        return False

    def shortest_path_len(self, expr: ast.FuncCall) -> None:
        """Virtuoso's transitivity operator names a table and two
        columns as string literals; resolve them like identifiers."""
        args = expr.args
        if len(args) < 3 or not all(
            isinstance(a, ast.Literal) and isinstance(a.value, str)
            for a in args[:3]
        ):
            return
        table_name = args[0].value
        table = self.require_table(table_name)
        if table is None:
            return
        for arg in args[1:3]:
            if arg.value not in table.columns:
                self.out.append(make(
                    "QA103",
                    f"unknown column {table_name}.{arg.value}",
                    self.location,
                ))
