"""Schema-aware static analysis for the benchmark's query catalogs.

The paper's comparison is only fair if every dialect's implementation of
an operation touches the same schema elements.  This package checks that
*statically*, before any benchmark run:

* :mod:`repro.analysis.diagnostics` — the ``Diagnostic`` model and the
  ``QAxxx`` error-code taxonomy.
* :mod:`repro.analysis.schema`      — the schema catalog (labels, edge
  types, tables, predicates, property types) derived from
  :mod:`repro.snb.schema`, with per-dialect element mappings.
* :mod:`repro.analysis.cypher`, :mod:`~repro.analysis.sql`,
  :mod:`~repro.analysis.sparql`, :mod:`~repro.analysis.gremlin` — the
  per-dialect walkers.
* :mod:`repro.analysis.consistency` — the cross-dialect pass comparing
  canonical schema footprints per connector operation.
* :mod:`repro.analysis.lockorder`   — the lock-acquisition-order pass
  over the transaction layer's call sites.
* :mod:`repro.analysis.linter`      — orchestration (``repro lint`` and
  the connectors' prepare-time validation).
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    QueryValidationError,
    Severity,
    SourceLocation,
)
from repro.analysis.schema import SchemaCatalog, default_catalog
from repro.analysis.cypher import analyze_cypher
from repro.analysis.sql import analyze_sql
from repro.analysis.sparql import analyze_sparql
from repro.analysis.gremlin import analyze_gremlin
from repro.analysis.consistency import (
    DECLARED_INSERT_DELTAS,
    INSERT_OPERATIONS,
    READ_OPERATIONS,
    check_consistency,
    check_insert_consistency,
)
from repro.analysis.lockorder import analyze_lock_order
from repro.analysis.linter import (
    ensure_catalog_valid,
    lint_all,
    validate_catalog,
)

__all__ = [
    "CODES",
    "DECLARED_INSERT_DELTAS",
    "Diagnostic",
    "INSERT_OPERATIONS",
    "QueryValidationError",
    "READ_OPERATIONS",
    "SchemaCatalog",
    "Severity",
    "SourceLocation",
    "analyze_cypher",
    "analyze_gremlin",
    "analyze_lock_order",
    "analyze_sparql",
    "analyze_sql",
    "check_consistency",
    "check_insert_consistency",
    "default_catalog",
    "ensure_catalog_valid",
    "lint_all",
    "validate_catalog",
]
