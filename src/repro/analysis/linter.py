"""Orchestration: validate query catalogs and run every pass.

Three consumers:

* connectors call :func:`ensure_catalog_valid` at construction, so a
  bad query is rejected with diagnostics before a benchmark starts;
* ``repro lint`` calls :func:`lint_all` and prints the diagnostics;
* tests call :func:`validate_catalog` against mutated catalogs to prove
  the walkers actually detect seeded defects.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from pathlib import Path

from repro.analysis.consistency import (
    check_consistency,
    check_insert_consistency,
)
from repro.analysis.cypher import AnalysisResult, analyze_cypher
from repro.analysis.diagnostics import (
    Diagnostic,
    QueryValidationError,
    errors,
)
from repro.analysis.gremlin import analyze_gremlin
from repro.analysis.lockorder import analyze_lock_order
from repro.analysis.schema import SchemaCatalog, default_catalog
from repro.analysis.sparql import analyze_sparql
from repro.analysis.sql import analyze_sql

_ANALYZERS = {
    "cypher": analyze_cypher,
    "sql": analyze_sql,
    "sparql": analyze_sparql,
    "gremlin": analyze_gremlin,
}


def analyze_catalog(
    dialect: str,
    queries: Mapping[str, object],
    catalog: SchemaCatalog | None = None,
) -> dict[str, AnalysisResult]:
    """Walk every operation of one dialect's query catalog."""
    analyze = _ANALYZERS[dialect]
    return {
        operation: analyze(operation, entries, catalog)
        for operation, entries in queries.items()
    }


def validate_catalog(
    dialect: str,
    queries: Mapping[str, object],
    catalog: SchemaCatalog | None = None,
) -> list[Diagnostic]:
    """All diagnostics for one dialect's catalog."""
    return [
        diagnostic
        for result in analyze_catalog(dialect, queries, catalog).values()
        for diagnostic in result.diagnostics
    ]


#: catalogs already validated this process (they are module-level
#: constants, so identity is a stable key)
_VALIDATED: set[tuple[str, int]] = set()


def ensure_catalog_valid(
    dialect: str,
    queries: Mapping[str, object],
    catalog: SchemaCatalog | None = None,
) -> None:
    """Raise :class:`QueryValidationError` on any ERROR diagnostic.

    Connectors call this from ``__init__``; the result is cached per
    catalog object so repeated construction stays cheap.
    """
    key = (dialect, id(queries))
    if key in _VALIDATED:
        return
    bad = errors(validate_catalog(dialect, queries, catalog))
    if bad:
        raise QueryValidationError(bad)
    _VALIDATED.add(key)


def connector_catalogs() -> dict[str, Mapping[str, object]]:
    """The built-in connectors' query catalogs (imported lazily to keep
    ``repro.analysis`` free of connector dependencies)."""
    from repro.core.connectors.cypher import CYPHER_QUERIES
    from repro.core.connectors.gremlin import GREMLIN_TRAVERSALS
    from repro.core.connectors.sparql import SPARQL_QUERIES
    from repro.core.connectors.sql import SQL_QUERIES

    return {
        "cypher": CYPHER_QUERIES,
        "sql": SQL_QUERIES,
        "sparql": SPARQL_QUERIES,
        "gremlin": GREMLIN_TRAVERSALS,
    }


def lint_all(
    catalog: SchemaCatalog | None = None,
    lock_paths: Iterable[str | Path] | None = None,
) -> list[Diagnostic]:
    """Every pass: per-dialect walkers, cross-dialect consistency, and
    the lock-order analysis.  Returns diagnostics of all severities."""
    catalog = catalog or default_catalog()
    diagnostics: list[Diagnostic] = []
    per_dialect: dict[str, dict[str, AnalysisResult]] = {}
    for dialect, queries in connector_catalogs().items():
        results = analyze_catalog(dialect, queries, catalog)
        per_dialect[dialect] = results
        for result in results.values():
            diagnostics.extend(result.diagnostics)
    diagnostics.extend(check_consistency(per_dialect, catalog))
    diagnostics.extend(check_insert_consistency(per_dialect, catalog))
    diagnostics.extend(analyze_lock_order(lock_paths))
    return diagnostics
