"""Shared caching subsystem for the four query dialects and the store.

Every engine in this repo keeps some *derived state* — state that is a
pure function of the base data plus the schema and can therefore go
stale.  This package centralizes both the containers and the protocol
for keeping that state honest.

Invalidation protocol
=====================

There are exactly two invalidation granularities, and every cached
piece of derived state in the repo must use one of them:

1. **Epoch (coarse).**  The owner keeps an integer epoch alongside an
   :class:`~repro.cache.lru.EpochKeyedCache`.  Entries are stamped with
   the epoch current at store time; a lookup whose stamp disagrees with
   the current epoch is a miss.  The epoch is bumped whenever the world
   the entries were derived from changes *wholesale*:

   * DDL — ``CREATE TABLE`` / ``CREATE INDEX`` (access paths change),
   * ``ANALYZE`` — statistics swap (cost estimates change),
   * planner reconfiguration (``set_join_reordering``),
   * bulk load.

   Used by: the SQL statement/plan caches (``relational/engine.py``),
   the Cypher statement/plan cache (``graphdb/engine.py``), the SPARQL
   parse+translate cache (``rdf/engine.py``), and the Gremlin Server
   script cache (``tinkerpop/server.py``).

2. **Dependency set (fine).**  Each entry declares the member ids its
   value was derived from, via a
   :class:`~repro.cache.lru.DependencyTrackingCache`.  A single-row
   write invalidates exactly the entries whose dependency set contains
   a written member — the same update events the Kafka consumer
   delivers drive this, so a ``knows`` edge insert between persons *a*
   and *b* evicts only cached neighborhoods containing *a* or *b*.
   The whole-cache ``invalidate_all`` remains as the epoch-style
   fallback for bulk load and ANALYZE.

   Used by: the ``GraphStore`` adjacency/neighborhood cache
   (``graphdb/store.py``).

Audit of derived-state sites (staleness hazards)
------------------------------------------------

* SQL ``_stmt_cache`` — parse trees depend only on the SQL text, never
  stale; plain LRU.
* SQL ``_plan_cache`` — depends on schema + stats; **epoch**, bumped by
  DDL / ANALYZE / reorder toggle.
* Cypher ``_stmt_cache`` — the cached object bundles parse *and* plan;
  plans depend on indexes + stats, so the whole cache is **epoch**,
  bumped by ``create_index`` / ``analyze`` (previously never
  invalidated — a real staleness bug this package fixes).
* SPARQL ``_stmt_cache`` — parse+translate depends only on text, but
  the executor's per-pattern cardinality memo depends on stats;
  **epoch** on the memo, cleared when ``analyze`` installs new stats.
* ``GraphStore._label_index`` / ``_indexes`` — maintained *inline* by
  every write (insert updates the index in the same operation), so they
  are never stale by construction; no epoch needed.
* ``GraphStore`` neighborhood cache — **dependency set** as above.
* Planner statistics themselves — snapshots by design (ANALYZE
  semantics); consumers must not cache *decisions* derived from them
  past the epoch bump.

Engines expose their counters uniformly through ``cache_stats()``
facades returning :class:`~repro.cache.lru.CacheStats` rows.
"""

from repro.cache.lru import (
    CacheStats,
    DependencyTrackingCache,
    EpochKeyedCache,
    LRUCache,
)

__all__ = [
    "CacheStats",
    "DependencyTrackingCache",
    "EpochKeyedCache",
    "LRUCache",
]
