"""Statistics-bearing caches shared by every engine.

Three shapes, all built on one size-bounded O(1) LRU:

* :class:`LRUCache` — the base map with ``hits`` / ``misses`` /
  ``evictions`` / ``invalidations`` counters (the buffer pool's
  bookkeeping, generalized to arbitrary keys and values).
* :class:`EpochKeyedCache` — entries are stamped with the owner's
  *statistics/schema epoch*; a lookup against a stale stamp misses, so
  bumping the epoch invalidates everything at once without touching the
  entries (the SQL plan cache's protocol, now shared by all dialects).
* :class:`DependencyTrackingCache` — entries declare the set of member
  ids they were derived from; invalidating a member evicts exactly the
  entries whose dependency set contains it (the graph store's
  fine-grained adjacency invalidation).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterable
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class CacheStats:
    """One cache's counters, as reported by the engine facades."""

    name: str
    size: int
    capacity: int
    hits: int
    misses: int
    evictions: int
    invalidations: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


_MISSING = object()


class LRUCache:
    """Size-bounded LRU map with hit/miss/eviction/invalidation counters.

    All operations are O(1); eviction drops the least recently *used*
    entry, exactly like the buffer pool's frame table.
    """

    def __init__(self, capacity: int = 1024, *, name: str = "lru") -> None:
        if capacity < 1:
            raise ValueError("cache needs capacity >= 1")
        self.name = name
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __getitem__(self, key: Hashable) -> Any:
        return self._entries[key]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, dict):
            return dict(self._entries) == other
        if isinstance(other, LRUCache):
            return dict(self._entries) == dict(other._entries)
        return NotImplemented

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (counting a hit) or ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without touching any counter or order."""
        return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        if key in self._entries:
            del self._entries[key]
            self.invalidations += 1
            return True
        return False

    def invalidate_all(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += dropped
        return dropped

    def items(self) -> list[tuple[Hashable, Any]]:
        return list(self._entries.items())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> CacheStats:
        return CacheStats(
            name=self.name,
            size=len(self._entries),
            capacity=self.capacity,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            invalidations=self.invalidations,
        )


class EpochKeyedCache:
    """An LRU whose entries are only valid for the current epoch.

    The owner bumps :attr:`epoch` whenever the derived state the entries
    were computed from changes wholesale (DDL, ANALYZE, planner
    reconfiguration); a lookup whose stamp disagrees with the current
    epoch counts as a miss and the caller recomputes.  The mapping
    protocol (``in`` / ``[]`` / ``== {}``) exposes ``(epoch, value)``
    pairs for introspection and tests.
    """

    def __init__(self, capacity: int = 1024, *, name: str = "plans") -> None:
        self._lru = LRUCache(capacity, name=name)
        self.epoch = 0

    # -- mapping-style introspection (entries are (epoch, value)) ---------

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._lru

    def __getitem__(self, key: Hashable) -> tuple[int, Any]:
        return self._lru[key]

    def __eq__(self, other: object) -> bool:
        return self._lru == other

    def get(self, key: Hashable) -> tuple[int, Any] | None:
        """Raw ``(epoch, value)`` entry without epoch filtering."""
        entry = self._lru.peek(key)
        return entry  # type: ignore[no-any-return]

    # -- the epoch-checked protocol ---------------------------------------

    def lookup(self, key: Hashable) -> Any:
        """The cached value, or ``None`` on a miss or a stale stamp."""
        entry = self._lru.get(key)
        if entry is None:
            return None
        stamp, value = entry
        if stamp != self.epoch:
            self._lru.misses += 1
            self._lru.hits -= 1  # the raw get over-counted
            self._lru.invalidate(key)
            return None
        return value

    def store(self, key: Hashable, value: Any) -> None:
        self._lru.put(key, (self.epoch, value))

    def bump_epoch(self) -> int:
        """Invalidate everything at once; returns the new epoch."""
        self.epoch += 1
        self._lru.invalidate_all()
        return self.epoch

    def clear(self) -> int:
        return self._lru.invalidate_all()

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    def stats(self) -> CacheStats:
        return self._lru.stats()


class DependencyTrackingCache:
    """An LRU whose entries declare the member ids they depend on.

    ``put(key, value, deps)`` records an inverted index from each member
    id to the keys derived from it; ``invalidate_members(ids)`` evicts
    exactly those keys.  This is the fine-grained protocol the graph
    store uses: a ``knows`` edge insert invalidates only the cached
    neighborhoods whose dependency set contains an endpoint.
    ``invalidate_all`` is the whole-cache epoch fallback for bulk load
    and ANALYZE.
    """

    def __init__(
        self, capacity: int = 4096, *, name: str = "neighborhood"
    ) -> None:
        self._lru = LRUCache(capacity, name=name)
        #: member id -> keys whose cached value was derived from it
        self._dependents: dict[Hashable, set[Hashable]] = {}
        #: key -> its dependency set (to unlink on eviction)
        self._deps_of: dict[Hashable, frozenset[Hashable]] = {}

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, key: Hashable, default: Any = None) -> Any:
        return self._lru.get(key, default)

    def put(
        self, key: Hashable, value: Any, deps: Iterable[Hashable]
    ) -> None:
        if key in self._lru:
            self._unlink(key)
        self._lru.put(key, value)
        dep_set = frozenset(deps)
        self._deps_of[key] = dep_set
        for member in dep_set:
            self._dependents.setdefault(member, set()).add(key)
        # the LRU may have evicted its oldest entry; drop its links too
        while len(self._deps_of) > len(self._lru):
            for stale in list(self._deps_of):
                if stale not in self._lru:
                    self._unlink(stale)
                    break

    def invalidate_members(self, members: Iterable[Hashable]) -> int:
        """Evict every entry depending on any of ``members``."""
        dropped = 0
        for member in members:
            for key in list(self._dependents.get(member, ())):
                if self._lru.invalidate(key):
                    dropped += 1
                self._unlink(key)
        return dropped

    def invalidate_all(self) -> int:
        """Whole-cache fallback (bulk load, ANALYZE, index builds)."""
        self._dependents.clear()
        self._deps_of.clear()
        return self._lru.invalidate_all()

    def entries(
        self,
    ) -> list[tuple[Hashable, Any, frozenset[Hashable]]]:
        """``(key, value, deps)`` triples for introspection — the
        sanitizer's QA703 audit recomputes each entry from the store
        and compares both the value and the declared dependency set."""
        return [
            (key, value, self._deps_of.get(key, frozenset()))
            for key, value in self._lru.items()
        ]

    def _unlink(self, key: Hashable) -> None:
        for member in self._deps_of.pop(key, ()):
            keys = self._dependents.get(member)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._dependents[member]

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def invalidations(self) -> int:
        return self._lru.invalidations

    def stats(self) -> CacheStats:
        return self._lru.stats()
