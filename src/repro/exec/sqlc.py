"""SQL plan-to-closure compiler.

Takes an optimized physical plan from the planner (the same object the
statement cache stores) and emits one specialized closure per operator,
chaining the vectorized kernels from :mod:`repro.exec.kernels` with the
plan's constants — tables, key closures, join kinds, batch sizes — pre
bound.  Executing the compiled form never touches the plan tree again.

Batch sizes come from the planner's cardinality annotations
(``est_rows``) via :func:`repro.stats.choose_batch_size`: small expected
outputs get small batches (don't over-compute under a LIMIT), large
ones amortize dispatch up to the cap.

Recursive CTEs compile too: the base, step, and body sub-plans each
compile to kernel chains, and a specialized driver runs the semi-naive
fixpoint over them — the shortest-path BFS runs every frontier
expansion through the vectorized join kernels instead of the
tuple-at-a-time interpreter.

Operators the kernel library does not cover — any node added after this
compiler — are *lifted*: their interpreted ``rows()`` iterator is
wrapped into batches unchanged, charging exactly what the interpreter
charges.  SQL compilation therefore never raises
:class:`~repro.exec.errors.CompileError`; an exotic plan simply keeps
its exotic parts interpreted inline.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.exec import kernels
from repro.exec.batch import batched, flatten
from repro.exec.kernels import Kernel
from repro.relational.sql.executor import (
    Aggregate,
    Distinct,
    ExecContext,
    Filter,
    HashJoin,
    IndexEqScan,
    IndexNLJoin,
    Limit,
    MaterializedScan,
    NLJoin,
    PlanNode,
    Project,
    SeqScan,
    SingleRow,
    Sort,
    SqlRuntimeError,
    VectorizedIndexNLJoin,
)
from repro.relational.sql.planner import (
    MAX_RECURSION_ITERATIONS,
    MAX_RECURSION_ROWS,
    RecursiveCTEPlan,
)
from repro.stats import choose_batch_size

CompiledQuery = Callable[[ExecContext], list[tuple]]


def compile_plan(plan: PlanNode) -> CompiledQuery:
    """Specialize ``plan`` into a closure ``(ctx) -> list of rows``.

    Output rows, their order, and storage-level charges are identical
    to ``list(plan.rows(ctx))``; only per-tuple interpretation cost is
    replaced by per-batch dispatch.
    """
    kernel = _compile(plan)

    def run(ctx: ExecContext) -> list[tuple]:
        return flatten(kernel(ctx))

    return run


def _compile(node: PlanNode) -> Kernel:
    size = choose_batch_size(node.est_rows)
    if isinstance(node, SingleRow):
        return kernels.single_row()
    if isinstance(node, SeqScan):
        return kernels.seq_scan(node.table, size)
    if isinstance(node, IndexEqScan):
        return kernels.index_eq_scan(
            node.table, node.column, node.key_fn, node.needed, size
        )
    if isinstance(node, MaterializedScan):
        holder = node.holder
        return kernels.materialized_scan(lambda: holder.rows, size)
    if isinstance(node, Filter):
        return kernels.filter_rows(_compile(node.child), node.predicate)
    if isinstance(node, Project):
        return kernels.project_rows(_compile(node.child), node.exprs)
    if isinstance(node, IndexNLJoin):
        return kernels.index_nl_join(
            _compile(node.outer),
            node.table,
            node.inner_column,
            node.outer_key_fn,
            node.kind,
            node.residual,
            None,
            node._null_row,
        )
    if isinstance(node, VectorizedIndexNLJoin):
        return kernels.index_nl_join(
            _compile(node.outer),
            node.table,
            node.inner_column,
            node.outer_key_fn,
            node.kind,
            node.residual,
            node.needed,
            node._null_row,
        )
    if isinstance(node, HashJoin):
        return kernels.hash_join(
            _compile(node.left),
            _compile(node.right),
            node.left_key_fn,
            node.right_key_fn,
            node.kind,
            node.residual,
            node._null_row,
        )
    if isinstance(node, NLJoin):
        return kernels.nl_join(
            _compile(node.outer),
            _compile(node.inner),
            node.predicate,
            node.kind,
            node._null_row,
        )
    if isinstance(node, Aggregate):
        return kernels.aggregate_rows(
            _compile(node.child), node.group_fns, node.agg_specs, size
        )
    if isinstance(node, Sort):
        return kernels.sort_rows(
            _compile(node.child), node.key_fns, node.descending, size
        )
    if isinstance(node, Limit):
        return kernels.limit_rows(_compile(node.child), node.limit)
    if isinstance(node, Distinct):
        return kernels.distinct_rows(_compile(node.child))
    if isinstance(node, RecursiveCTEPlan):
        return _recursive_cte(node, size)
    return _lift(node, size)


def _recursive_cte(node: RecursiveCTEPlan, size: int) -> Kernel:
    """Semi-naive fixpoint over compiled base / step / body kernels.

    Matches :meth:`RecursiveCTEPlan.rows` exactly — same delta-only step
    inputs, same global dedup under ``UNION`` (distinct), same
    iteration/row guards — but every sub-plan runs as vectorized
    kernels.  The step and body kernels read the CTE through the plan's
    shared ``RowsHolder``s (their ``MaterializedScan`` leaves hold a
    thunk), so flipping the holders between iterations re-targets the
    compiled closures with no recompilation.
    """
    base = _compile(node.base)
    step = _compile(node.step)
    body = _compile(node.body)

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        seen: set[tuple] = set()
        all_rows: list[tuple] = []

        def absorb(rows: list[tuple]) -> list[tuple]:
            if not node.distinct:
                all_rows.extend(rows)
                return rows
            fresh = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    fresh.append(row)
            all_rows.extend(fresh)
            return fresh

        delta = absorb(flatten(base(ctx)))
        iterations = 0
        while delta:
            iterations += 1
            if iterations > MAX_RECURSION_ITERATIONS:
                raise SqlRuntimeError(
                    f"recursive CTE {node.name!r} exceeded "
                    f"{MAX_RECURSION_ITERATIONS} iterations"
                )
            if len(all_rows) > MAX_RECURSION_ROWS:
                raise SqlRuntimeError(
                    f"recursive CTE {node.name!r} exceeded "
                    f"{MAX_RECURSION_ROWS} rows"
                )
            node.working.rows = delta
            delta = absorb(flatten(step(ctx)))
        node.result.rows = all_rows
        yield from body(ctx)

    return run


def _lift(node: PlanNode, size: int) -> Kernel:
    """Wrap an uncompilable operator's interpreted iterator into batches.

    The node charges its own interpreted costs as it runs; the wrapper
    adds nothing, so lifting is never more expensive than interpreting.
    """

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        yield from batched(node.rows(ctx), size)

    return run
