"""Compiled + vectorized query execution (batch-at-a-time kernels).

Every dialect's warm path used to re-walk an AST or a plan tree one
tuple at a time.  This package provides the alternative the engines now
default to:

* :mod:`repro.exec.batch` — the batch-at-a-time calling convention
  (pull-based iterators over bounded row batches) and its cost
  accounting (``vector_setup`` per dispatched batch, ``tuple_vec`` per
  item instead of ``tuple_cpu`` / ``cypher_row`` / ``step_eval``).
* :mod:`repro.exec.kernels` — the vectorized operator kernel library:
  scan, index probe, hash join, expand (neighbor lookup), filter,
  project, aggregate.  Kernels pull column batches through the storage
  layer's batch read APIs (`fetch_batch`, `lookup_batch`,
  `neighbors_batch`, ...), deduplicating repeated storage accesses
  within a batch.
* :mod:`repro.exec.sqlc`, :mod:`repro.exec.cypherc`,
  :mod:`repro.exec.gremlinc`, :mod:`repro.exec.sparqlc` — per-dialect
  plan-to-closure compilers.  Each takes an already-cached, optimized
  plan and emits one specialized closure chaining kernels with
  constants, offsets and accessors pre-bound; the warm path never
  touches the AST again.

Compilation units are the engines' plan caches: compiled closures live
in epoch-keyed caches bumped by exactly the events that evict plans
(DDL, ANALYZE, planner reconfiguration), so a stale closure can never
run.  A compiler that cannot preserve a query's exact interpreted
semantics raises :class:`CompileError` and the engine falls back to the
interpreter for that statement (writes, variable-length paths, repeat
traversals).
"""

from repro.exec.batch import batched, charge_batch
from repro.exec.errors import CompileError

__all__ = ["CompileError", "batched", "charge_batch"]
