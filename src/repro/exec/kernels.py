"""The vectorized operator kernel library.

Each factory pre-binds its constants (tables, columns, key closures,
batch sizes) and returns a *kernel*: a closure
``(ctx) -> Iterator[list[tuple]]`` following the batch-at-a-time
convention of :mod:`repro.exec.batch`.  The relational kernels mirror
the iterator operators in :mod:`repro.relational.sql.executor` row for
row — same output, same order — but move per-tuple interpretation
(``tuple_cpu``) to per-batch dispatch (``vector_setup`` +
``tuple_vec``) and reach storage through the deduplicating batch read
APIs.

The graph helpers at the bottom (:func:`expand_frontier`,
:func:`gather_props`) are the expand / neighbor-lookup kernel shared by
the Cypher and Gremlin compilers; they speak node ids rather than rows
because each dialect keeps its own per-row bookkeeping (relationship
uniqueness, traverser paths).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from typing import Any, Protocol

from repro.exec.batch import batched, charge_batch
from repro.relational.sql.executor import (
    ExecContext,
    ExprFn,
    _AggState,
)
from repro.relational.table import Table
from repro.simclock.ledger import charge

Kernel = Callable[[ExecContext], Iterator[list[tuple]]]


# --- scans -----------------------------------------------------------------


def single_row() -> Kernel:
    """FROM-less SELECT: one empty row."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        charge_batch(1)
        yield [()]

    return run


def seq_scan(table: Table, batch_size: int) -> Kernel:
    """Full-table scan in column batches."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        batch: list[tuple] = []
        for _handle, row in table.scan():
            batch.append(row)
            if len(batch) >= batch_size:
                charge_batch(len(batch))
                yield batch
                batch = []
        if batch:
            charge_batch(len(batch))
            yield batch

    return run


def index_eq_scan(
    table: Table,
    column: str,
    key_fn: ExprFn,
    needed: Sequence[str] | None,
    batch_size: int,
) -> Kernel:
    """Index probe with a runtime key, batch-fetched rows."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        key = key_fn((), ctx.params)
        handles = table.lookup(column, key)
        rows = table.fetch_batch(handles, needed)
        for batch in batched(rows, batch_size):
            charge_batch(len(batch))
            yield batch

    return run


def materialized_scan(
    rows_of: Callable[[], list[tuple]], batch_size: int
) -> Kernel:
    """Scan over a shared in-memory row list (CTE working tables)."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        for batch in batched(rows_of(), batch_size):
            charge_batch(len(batch))
            yield batch

    return run


# --- row-wise kernels --------------------------------------------------------


def filter_rows(source: Kernel, predicate: ExprFn) -> Kernel:
    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        params = ctx.params
        for batch in source(ctx):
            charge_batch(len(batch))
            out = [row for row in batch if predicate(row, params)]
            if out:
                yield out

    return run


def project_rows(source: Kernel, exprs: Sequence[ExprFn]) -> Kernel:
    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        params = ctx.params
        for batch in source(ctx):
            charge_batch(len(batch))
            yield [tuple(fn(row, params) for fn in exprs) for row in batch]

    return run


def limit_rows(source: Kernel, limit: int) -> Kernel:
    """Truncation; stops pulling batches once satisfied."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        if limit <= 0:
            return
        remaining = limit
        for batch in source(ctx):
            if len(batch) >= remaining:
                yield batch[:remaining]
                return
            remaining -= len(batch)
            yield batch

    return run


def distinct_rows(source: Kernel) -> Kernel:
    """First-occurrence dedup (hash table, one probe per row)."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        seen: set[tuple] = set()
        for batch in source(ctx):
            charge("vector_setup")
            charge("hash_probe", len(batch))
            out = []
            for row in batch:
                if row not in seen:
                    seen.add(row)
                    out.append(row)
            if out:
                yield out

    return run


def sort_rows(
    source: Kernel,
    key_fns: Sequence[ExprFn],
    descending: Sequence[bool],
    batch_size: int,
) -> Kernel:
    """Stable multi-key sort (right-to-left passes, NULLs first)."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        params = ctx.params
        rows = [row for batch in source(ctx) for row in batch]
        charge_batch(len(rows))
        for key_fn, desc in reversed(list(zip(key_fns, descending))):
            rows.sort(
                key=lambda row: _sort_key(key_fn(row, params)),
                reverse=desc,
            )
        yield from batched(rows, batch_size)

    return run


def _sort_key(value: Any) -> tuple:
    return (value is not None, value)


# --- joins ---------------------------------------------------------------------


def index_nl_join(
    outer: Kernel,
    table: Table,
    inner_column: str,
    outer_key_fn: ExprFn,
    kind: str,
    residual: ExprFn | None,
    needed: Sequence[str] | None,
    null_row: tuple,
) -> Kernel:
    """Batched index nested-loop join.

    Per outer batch: one deduplicated probe pass over the inner index,
    one batch fetch of every matched handle, then an in-memory stitch in
    outer order — identical output to the tuple-at-a-time operator.
    """

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        params = ctx.params
        for batch in outer(ctx):
            charge_batch(len(batch))
            keys = [outer_key_fn(row, params) for row in batch]
            probe_keys = [k for k in keys if k is not None]
            probed = (
                table.lookup_batch(inner_column, probe_keys)
                if probe_keys
                else {}
            )
            unique_handles = list(
                dict.fromkeys(h for hs in probed.values() for h in hs)
            )
            fetched = dict(
                zip(
                    unique_handles,
                    table.fetch_batch(unique_handles, needed),
                )
            )
            out: list[tuple] = []
            for row, key in zip(batch, keys):
                matched = False
                for handle in probed.get(key, ()) if key is not None else ():
                    combined = row + fetched[handle]
                    if residual is not None and not residual(
                        combined, params
                    ):
                        continue
                    matched = True
                    out.append(combined)
                if not matched and kind == "left":
                    out.append(row + null_row)
            if out:
                charge("tuple_vec", len(out))
                yield out

    return run


def hash_join(
    left: Kernel,
    right: Kernel,
    left_key_fn: ExprFn,
    right_key_fn: ExprFn,
    kind: str,
    residual: ExprFn | None,
    null_row: tuple,
) -> Kernel:
    """Build on the right input, probe from the left, batch at a time."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        params = ctx.params
        build: dict[Any, list[tuple]] = {}
        for batch in right(ctx):
            charge_batch(len(batch))
            for row in batch:
                key = right_key_fn(row, params)
                if key is not None:
                    build.setdefault(key, []).append(row)
        for batch in left(ctx):
            charge_batch(len(batch))
            charge("hash_probe", len(batch))
            out: list[tuple] = []
            for row in batch:
                key = left_key_fn(row, params)
                matched = False
                for right_row in (
                    build.get(key, ()) if key is not None else ()
                ):
                    combined = row + right_row
                    if residual is not None and not residual(
                        combined, params
                    ):
                        continue
                    matched = True
                    out.append(combined)
                if not matched and kind == "left":
                    out.append(row + null_row)
            if out:
                charge("tuple_vec", len(out))
                yield out

    return run


def nl_join(
    outer: Kernel,
    inner: Kernel,
    predicate: ExprFn | None,
    kind: str,
    null_row: tuple,
) -> Kernel:
    """Nested-loop fallback for non-equality conditions."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        params = ctx.params
        inner_rows = [row for batch in inner(ctx) for row in batch]
        for batch in outer(ctx):
            charge_batch(len(batch))
            charge("tuple_vec", len(batch) * len(inner_rows))
            out: list[tuple] = []
            for row in batch:
                matched = False
                for inner_row in inner_rows:
                    combined = row + inner_row
                    if predicate is None or predicate(combined, params):
                        matched = True
                        out.append(combined)
                if not matched and kind == "left":
                    out.append(row + null_row)
            if out:
                yield out

    return run


# --- aggregation -----------------------------------------------------------------


def aggregate_rows(
    source: Kernel,
    group_fns: Sequence[ExprFn],
    agg_specs: Sequence[tuple[str, ExprFn | None, bool]],
    batch_size: int,
) -> Kernel:
    """Hash aggregation, semantics identical to the interpreted operator."""

    def run(ctx: ExecContext) -> Iterator[list[tuple]]:
        params = ctx.params
        groups: dict[tuple, list[_AggState]] = {}
        for batch in source(ctx):
            charge_batch(len(batch))
            for row in batch:
                key = tuple(fn(row, params) for fn in group_fns)
                states = groups.get(key)
                if states is None:
                    states = [
                        _AggState(name, distinct)
                        for name, _, distinct in agg_specs
                    ]
                    groups[key] = states
                for state, (_, arg_fn, _) in zip(states, agg_specs):
                    state.feed(
                        arg_fn(row, params) if arg_fn is not None else 1
                    )
        if not groups and not group_fns:
            states = [
                _AggState(name, distinct) for name, _, distinct in agg_specs
            ]
            yield [tuple(s.result() for s in states)]
            return
        rows = [
            key + tuple(s.result() for s in states)
            for key, states in groups.items()
        ]
        yield from batched(rows, batch_size)

    return run


# --- graph expand / property-gather kernels ----------------------------------------


class AdjacencySource(Protocol):
    """What the expand kernel needs from a graph store or provider."""

    def neighbors_batch(
        self,
        node_ids: Sequence[int],
        rel_type: str | None,
        direction: Any,
    ) -> dict[int, tuple[tuple[int, int], ...]]:
        ...  # pragma: no cover - protocol


def expand_frontier(
    store: AdjacencySource,
    frontier: Sequence[int],
    rel_type: str | None,
    direction: Any,
) -> dict[int, tuple[tuple[int, int], ...]]:
    """The expand / neighbor-lookup kernel's storage half.

    One deduplicated adjacency fetch for a whole frontier; charges one
    ``vector_setup`` for the dispatch plus the store's own (cache-aware)
    per-unique-node costs.  Callers stitch the returned
    ``node -> ((rel_id, other), ...)`` map back onto their rows.
    """
    charge("vector_setup")
    if not frontier:
        return {}
    return store.neighbors_batch(frontier, rel_type, direction)


def gather_props(
    fetch_batch: Callable[[Sequence[int]], dict[int, dict[str, Any]]],
    ids: Sequence[int],
) -> dict[int, dict[str, Any]]:
    """Deduplicated property gather for a batch of element ids."""
    charge("vector_setup")
    if not ids:
        return {}
    return fetch_batch(ids)
