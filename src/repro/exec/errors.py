"""The compiler escape hatch."""

from __future__ import annotations


class CompileError(Exception):
    """The query cannot be compiled without changing its semantics.

    Engines catch this once per statement, memoize the failure in the
    closure cache, and run the interpreter instead — the fallback is a
    per-statement decision, never a per-row one.
    """
