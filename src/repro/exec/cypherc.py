"""Cypher plan-to-closure compiler (read-only statements).

Compiles a parsed+planned query — the object the engine's epoch-keyed
statement cache stores — into one closure per clause: anchor selection
and pattern ordering are decided **at compile time** using the same
statistics code the interpreter consults per row, expressions become
pre-bound value closures, and pattern expansion runs level-synchronous
over row batches, fetching adjacency and node records through the
store's deduplicating batch APIs.

Level-synchronous expansion enumerates candidate rows in exactly the
interpreter's depth-first order (lexicographic in per-hop adjacency
order), so compiled output is identical row for row — the differential
suite asserts this for every catalog query.

Statements the kernel set cannot express without changing semantics
raise :class:`~repro.exec.errors.CompileError` and the engine falls
back to the interpreter: writes (CREATE / SET), ``shortestPath()``,
variable-length patterns, and MATCH clauses that re-match variables
bound by an earlier OPTIONAL MATCH (their boundness varies per row, so
anchor selection stops being a compile-time decision).
"""

from __future__ import annotations

import operator
from collections.abc import Callable
from typing import Any

from repro.exec.batch import batched, charge_batch
from repro.exec.errors import CompileError
from repro.exec.kernels import expand_frontier
from repro.graphdb.cypher import ast
from repro.graphdb.cypher.executor import (
    _FLIP,
    _TO_DIRECTION,
    AGGREGATE_FUNCS,
    CypherExecutor,
    CypherRuntimeError,
    NodeRef,
    PathRef,
    RelRef,
    WriteSummary,
    _contains_aggregate,
    _expr_name,
    _null_safe,
    _pattern_variables,
)
from repro.graphdb.store import GraphStore
from repro.simclock.ledger import charge
from repro.stats import GraphStatistics, choose_batch_size

Row = dict[str, Any]
ValueFn = Callable[[Row, dict], Any]
#: (origin row index, bindings, cursor node, anchor node, used rel ids)
_State = tuple[int, Row, int, int, frozenset]
CompiledCypher = Callable[
    [dict[str, Any] | None], tuple[list[tuple], WriteSummary]
]

_FAKE_BINDING = {
    "node": NodeRef(0),
    "rel": RelRef(0),
    "path": PathRef((), 0),
}


def compile_query(
    query: ast.Query,
    store: GraphStore,
    stats: GraphStatistics | None,
) -> CompiledCypher:
    """Specialize a read-only query into a parameter-ready closure.

    ``stats`` must be the statistics the engine's executor would use;
    compile-time anchor/order decisions bake them in, and the engine's
    epoch bump on ANALYZE / CREATE INDEX evicts the stale closure.
    """
    helper = CypherExecutor(store)
    helper.stats = stats

    bound_kinds: dict[str, str] = {}
    fragile: set[str] = set()
    clause_fns = []
    for clause in query.clauses:
        if not isinstance(clause, ast.MatchClause):
            raise CompileError(
                f"{type(clause).__name__} requires the interpreter"
            )
        for pattern in clause.patterns:
            if pattern.shortest:
                raise CompileError(
                    "shortestPath() requires the interpreter"
                )
            for rel in pattern.rels:
                if rel.var_length:
                    raise CompileError(
                        "variable-length patterns require the interpreter"
                    )
            for node in pattern.nodes:
                if node.var and node.var in fragile:
                    raise CompileError(
                        "re-matching OPTIONAL MATCH bindings requires "
                        "the interpreter"
                    )
        clause_fns.append(
            _compile_match(clause, dict(bound_kinds), store, helper)
        )
        fresh: list[str] = []
        for pattern in clause.patterns:
            for node in pattern.nodes:
                if node.var and node.var not in bound_kinds:
                    bound_kinds[node.var] = "node"
                    fresh.append(node.var)
            for rel in pattern.rels:
                if rel.var and rel.var not in bound_kinds:
                    bound_kinds[rel.var] = "rel"
                    fresh.append(rel.var)
            if pattern.assign_var and pattern.assign_var not in bound_kinds:
                bound_kinds[pattern.assign_var] = "path"
                fresh.append(pattern.assign_var)
        if clause.optional:
            fragile.update(fresh)

    if query.returns is None:
        raise CompileError("statements without RETURN require the interpreter")
    project = _compile_return(query.returns, store)

    def run(params: dict[str, Any] | None) -> tuple[list[tuple], WriteSummary]:
        bound_params = params or {}
        rows: list[Row] = [{}]
        for clause_fn in clause_fns:
            rows = clause_fn(rows, bound_params)
        return project(rows, bound_params), WriteSummary()

    return run


# --- MATCH -----------------------------------------------------------------


def _compile_match(
    clause: ast.MatchClause,
    bound_kinds: dict[str, str],
    store: GraphStore,
    helper: CypherExecutor,
) -> Callable[[list[Row], dict], list[Row]]:
    ordered = helper._order_patterns(
        list(clause.patterns), set(bound_kinds)
    )
    kinds = dict(bound_kinds)
    pattern_fns = []
    for pattern in ordered:
        nodes, rels = pattern.nodes, pattern.rels
        fake_row = {
            name: _FAKE_BINDING[kind] for name, kind in kinds.items()
        }
        anchor = helper._pick_anchor(fake_row, nodes, rels)
        est = (
            helper._chain_cost(nodes, rels, anchor, set(kinds))
            if helper.stats is not None
            else None
        )
        pattern_fns.append(
            _compile_pattern(
                pattern, anchor, kinds, store, choose_batch_size(est)
            )
        )
        for node in nodes:
            if node.var:
                kinds.setdefault(node.var, "node")
        for rel in rels:
            if rel.var:
                kinds.setdefault(rel.var, "rel")
        if pattern.assign_var:
            kinds.setdefault(pattern.assign_var, "path")

    where_fn = (
        _compile_expr(clause.where, store)
        if clause.where is not None
        else None
    )
    pattern_vars = _pattern_variables(clause.patterns)
    optional = clause.optional

    def run(rows: list[Row], params: dict) -> list[Row]:
        items = list(enumerate(rows))
        for pattern_fn in pattern_fns:
            items = pattern_fn(items, params)
        if where_fn is not None:
            items = [
                (origin, row)
                for origin, row in items
                if where_fn(row, params)
            ]
        if where_fn is not None or optional:
            # the filter / left-outer merge is the only per-item work at
            # this level; a plain MATCH is pass-through and dispatches
            # nothing
            for chunk in batched(items, 1024):
                charge_batch(len(chunk))
        if not optional:
            return [row for _, row in items]
        out: list[Row] = []
        cursor, total = 0, len(items)
        for origin, row in enumerate(rows):
            had_match = False
            while cursor < total and items[cursor][0] == origin:
                out.append(items[cursor][1])
                cursor += 1
                had_match = True
            if not had_match:
                padded = dict(row)
                for var in pattern_vars:
                    padded.setdefault(var, None)
                out.append(padded)
        return out

    return run


def _compile_pattern(
    pattern: ast.PathPattern,
    anchor: int,
    kinds: dict[str, str],
    store: GraphStore,
    batch_size: int,
) -> Callable[[list[tuple[int, Row]], dict], list[tuple[int, Row]]]:
    nodes, rels = pattern.nodes, pattern.rels
    anchor_node = nodes[anchor]
    source, subsumed = _compile_anchor_source(anchor_node, kinds, store)
    # predicate subsumption: when the anchor source already proves every
    # label/property the pattern states (an index lookup on exactly that
    # label+key), re-verifying the candidates is compile-time-provably
    # redundant and the check is elided outright
    anchor_check = None if subsumed else _compile_node_check(
        anchor_node, store
    )
    anchor_var = anchor_node.var
    right_steps = [
        _compile_step(
            rels[pos], nodes[pos + 1], rels[pos].direction, store, batch_size
        )
        for pos in range(anchor, len(rels))
    ]
    left_steps = [
        _compile_step(
            rels[pos - 1],
            nodes[pos - 1],
            _FLIP[rels[pos - 1].direction],
            store,
            batch_size,
        )
        for pos in range(anchor, 0, -1)
    ]

    def run(
        items: list[tuple[int, Row]], params: dict
    ) -> list[tuple[int, Row]]:
        states: list[_State] = []
        for chunk in batched(items, batch_size):
            per_item = [source(row, params) for _, row in chunk]
            if anchor_check is not None:
                entries = [
                    (row, nid)
                    for (_, row), cands in zip(chunk, per_item)
                    for nid in cands
                ]
                keep = anchor_check(entries, params)
            else:
                keep = None
            pos, emitted = 0, 0
            for (origin, row), cands in zip(chunk, per_item):
                for nid in cands:
                    if keep is None or keep[pos]:
                        bound = (
                            {**row, anchor_var: NodeRef(nid)}
                            if anchor_var
                            else row
                        )
                        states.append(
                            (origin, bound, nid, nid, frozenset())
                        )
                        emitted += 1
                    pos += 1
            charge("vector_setup")
            if emitted:
                charge("tuple_vec", emitted)
        for step in right_steps:
            states = step(states, params)
        if left_steps:
            states = [
                (origin, row, anchor_id, anchor_id, used)
                for origin, row, _cur, anchor_id, used in states
            ]
            for step in left_steps:
                states = step(states, params)
        return [(origin, row) for origin, row, _c, _a, _u in states]

    return run


def _compile_anchor_source(
    node: ast.NodePattern, kinds: dict[str, str], store: GraphStore
) -> tuple[Callable[[Row, dict], list[int]], bool]:
    """Candidate source for the anchor node, plus a subsumption flag.

    The flag is True when the source *proves* every predicate the node
    pattern states — an index lookup on the pattern's only label and
    only property, a label scan for its only label, or a bound variable
    with nothing left to restate — so the anchor re-check can be elided
    at compile time.  The interpreter re-verifies per candidate; the
    answers are identical because the source guarantees the predicate.
    """
    if node.var and kinds.get(node.var) == "node":
        var = node.var
        return (
            lambda row, params: [row[var].id],
            not node.labels and not node.props,
        )
    for label in node.labels:
        for key, expr in node.props:
            if store.has_index(label, key):
                value_fn = _compile_expr(expr, store)
                return (
                    lambda row, params, label=label, key=key: store.lookup(
                        label, key, value_fn(row, params)
                    ),
                    node.labels == [label] and len(node.props) == 1,
                )
    if node.labels:
        label0 = node.labels[0]
        return (
            lambda row, params: list(store.nodes_with_label(label0)),
            len(node.labels) == 1 and not node.props,
        )
    return lambda row, params: list(store.all_nodes()), not node.props


def _compile_node_check(
    node: ast.NodePattern, store: GraphStore, fused: bool = False
) -> Callable[[list[tuple[Row, int]], dict], list[bool]]:
    """Batched mirror of ``CypherExecutor._node_matches``.

    Label and property records are gathered once per unique node id in
    the batch; the interpreter pays per candidate occurrence.  With
    ``fused`` the check runs inside an enclosing kernel's loop (operator
    fusion) and rides that kernel's per-chunk dispatch instead of
    charging its own.
    """
    var = node.var
    labels = node.labels
    prop_fns = [
        (key, _compile_expr(expr, store)) for key, expr in node.props
    ]

    def check(entries: list[tuple[Row, int]], params: dict) -> list[bool]:
        keep = [True] * len(entries)
        if var:
            for i, (row, nid) in enumerate(entries):
                bound = row.get(var)
                if isinstance(bound, NodeRef) and bound.id != nid:
                    keep[i] = False
        if labels:
            ids = [nid for i, (_, nid) in enumerate(entries) if keep[i]]
            if ids:
                if not fused:
                    charge("vector_setup")
                found = store.node_labels_batch(ids)
                for i, (_, nid) in enumerate(entries):
                    if keep[i] and not all(
                        label in found[nid] for label in labels
                    ):
                        keep[i] = False
        if prop_fns:
            ids = [nid for i, (_, nid) in enumerate(entries) if keep[i]]
            if ids:
                if not fused:
                    charge("vector_setup")
                found_props = store.node_props_batch(ids)
                for i, (row, nid) in enumerate(entries):
                    if not keep[i]:
                        continue
                    props = found_props[nid]
                    for key, value_fn in prop_fns:
                        if props.get(key) != value_fn(row, params):
                            keep[i] = False
                            break
        return keep

    return check


def _compile_step(
    rel: ast.RelPattern,
    target: ast.NodePattern,
    direction: str,
    store: GraphStore,
    batch_size: int,
) -> Callable[[list[_State], dict], list[_State]]:
    """One fixed-length hop as a frontier-at-a-time expand kernel."""
    rel_type = rel.types[0] if rel.types else None
    store_dir = _TO_DIRECTION[direction]
    rel_prop_fns = [
        (key, _compile_expr(expr, store)) for key, expr in rel.props
    ]
    node_check = _compile_node_check(target, store, fused=True)
    rel_var, target_var = rel.var, target.var

    def run(states: list[_State], params: dict) -> list[_State]:
        out: list[_State] = []
        for chunk in batched(states, batch_size):
            adjacency = expand_frontier(
                store, [state[2] for state in chunk], rel_type, store_dir
            )
            candidates: list[tuple[int, int, int]] = []
            for index, state in enumerate(chunk):
                used = state[4]
                for rel_id, other in adjacency.get(state[2], ()):
                    if rel_id not in used:
                        candidates.append((index, rel_id, other))
            if rel_prop_fns and candidates:
                # fused into this kernel's per-chunk dispatch
                rel_props = store.rel_props_batch(
                    [rel_id for _, rel_id, _ in candidates]
                )
                candidates = [
                    (index, rel_id, other)
                    for index, rel_id, other in candidates
                    if all(
                        rel_props[rel_id].get(key)
                        == value_fn(chunk[index][1], params)
                        for key, value_fn in rel_prop_fns
                    )
                ]
            entries = [
                (chunk[index][1], other) for index, _, other in candidates
            ]
            keep = node_check(entries, params)
            emitted = 0
            for (index, rel_id, other), ok in zip(candidates, keep):
                if not ok:
                    continue
                origin, row, _cur, anchor_id, used = chunk[index]
                if rel_var or target_var:
                    row = dict(row)
                    if rel_var:
                        row[rel_var] = RelRef(rel_id)
                    if target_var:
                        row[target_var] = NodeRef(other)
                out.append((origin, row, other, anchor_id, used | {rel_id}))
                emitted += 1
            # expand + rel filter + node check + bind are one fused
            # kernel; expand_frontier charged its dispatch already
            if emitted:
                charge("tuple_vec", emitted)
        return out

    return run


# --- RETURN ------------------------------------------------------------------


def _compile_return(
    returns: ast.ReturnClause, store: GraphStore
) -> Callable[[list[Row], dict], list[tuple]]:
    aliases = [
        item.alias or _expr_name(item.expr) for item in returns.items
    ]
    if any(_contains_aggregate(item.expr) for item in returns.items):
        project = _compile_aggregate(returns, store)
    else:
        value_fns = [
            _compile_expr(item.expr, store) for item in returns.items
        ]

        def project(rows: list[Row], params: dict) -> list[tuple]:
            out = []
            for chunk in batched(rows, 1024):
                charge_batch(len(chunk))
                for row in chunk:
                    out.append(
                        tuple(
                            _materialize(store, fn(row, params))
                            for fn in value_fns
                        )
                    )
            return out

    order_keys: list[tuple[int, bool]] | None = None
    if returns.order_by:
        order_keys = [
            (_order_index(item.expr, aliases), item.descending)
            for item in returns.order_by
        ]
    distinct = returns.distinct
    limit = returns.limit

    def run(rows: list[Row], params: dict) -> list[tuple]:
        projected = project(rows, params)
        if distinct:
            seen: set[tuple] = set()
            unique = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            projected = unique
        if order_keys is not None:
            for index, descending in reversed(order_keys):
                projected.sort(
                    key=lambda row, i=index: _null_safe(row[i]),
                    reverse=descending,
                )
        if limit is not None:
            projected = projected[:limit]
        return projected

    return run


def _order_index(expr: ast.Expr, aliases: list[str]) -> int:
    if isinstance(expr, ast.VarRef) and expr.name in aliases:
        return aliases.index(expr.name)
    if isinstance(expr, ast.PropAccess):
        name = f"{expr.var}.{expr.key}"
        if name in aliases:
            return aliases.index(name)
    raise CompileError("ORDER BY must reference a returned column")


class _AggRun:
    """Mirror of the interpreter's ``_AggState`` over materialized values."""

    __slots__ = (
        "func", "count", "total", "minimum", "maximum", "items", "seen",
    )

    def __init__(self, func: str, distinct: bool) -> None:
        self.func = func
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.items: list = []
        self.seen: set | None = set() if distinct else None

    def feed_star(self) -> None:
        self.count += 1

    def feed(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        self.items.append(value)
        self.total = value if self.total is None else self.total + value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "min":
            return self.minimum
        if self.func == "max":
            return self.maximum
        if self.func == "avg":
            return None if not self.count else self.total / self.count
        if self.func == "collect":
            return tuple(self.items)
        raise CypherRuntimeError(f"unknown aggregate {self.func}()")


def _compile_aggregate(
    returns: ast.ReturnClause, store: GraphStore
) -> Callable[[list[Row], dict], list[tuple]]:
    key_items: list[tuple[int, ValueFn]] = []
    agg_items: list[tuple[int, str, bool, bool, ValueFn | None]] = []
    for index, item in enumerate(returns.items):
        if not _contains_aggregate(item.expr):
            key_items.append((index, _compile_expr(item.expr, store)))
            continue
        expr = item.expr
        if not isinstance(expr, ast.FuncCall):
            raise CompileError(
                "aggregates nested in expressions require the interpreter"
            )
        arg_fn = None if expr.star else _compile_expr(expr.args[0], store)
        agg_items.append(
            (index, expr.name, expr.star, expr.distinct, arg_fn)
        )
    width = len(returns.items)

    def project(rows: list[Row], params: dict) -> list[tuple]:
        groups: dict[tuple, list[_AggRun]] = {}
        for chunk in batched(rows, 1024):
            charge_batch(len(chunk))
            for row in chunk:
                key = tuple(
                    _materialize(store, fn(row, params))
                    for _, fn in key_items
                )
                states = groups.get(key)
                if states is None:
                    states = [
                        _AggRun(name, distinct)
                        for _, name, _, distinct, _ in agg_items
                    ]
                    groups[key] = states
                for state, (_, _, star, _, arg_fn) in zip(
                    states, agg_items
                ):
                    if star:
                        state.feed_star()
                    else:
                        assert arg_fn is not None
                        state.feed(
                            _materialize(store, arg_fn(row, params))
                        )
        if not groups and not key_items:
            groups[()] = [
                _AggRun(name, distinct)
                for _, name, _, distinct, _ in agg_items
            ]
        out = []
        for key, states in groups.items():
            values: list[Any] = [None] * width
            for (index, _), value in zip(key_items, key):
                values[index] = value
            for (index, _, _, _, _), state in zip(agg_items, states):
                values[index] = state.result()
            out.append(tuple(values))
        return out

    return project


# --- expressions ----------------------------------------------------------------


def _materialize(store: GraphStore, value: Any) -> Any:
    if isinstance(value, NodeRef):
        return tuple(sorted(store.node_props(value.id).items()))
    if isinstance(value, RelRef):
        return tuple(sorted(store.rel_props(value.id).items()))
    if isinstance(value, PathRef):
        return value
    if isinstance(value, list):
        return tuple(value)
    return value


_CMP = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


def _compile_expr(expr: ast.Expr, store: GraphStore) -> ValueFn:
    """Pre-bind an expression to ``fn(row, params)``.

    Runtime behaviour (NULL logic, error messages) mirrors
    ``CypherExecutor._eval`` exactly.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row, params: value
    if isinstance(expr, ast.Param):
        name = expr.name

        def read_param(row: Row, params: dict) -> Any:
            try:
                return params[name]
            except KeyError:
                raise CypherRuntimeError(
                    f"missing parameter ${name}"
                ) from None

        return read_param
    if isinstance(expr, ast.VarRef):
        var = expr.name

        def read_var(row: Row, params: dict) -> Any:
            try:
                return row[var]
            except KeyError:
                raise CypherRuntimeError(
                    f"unbound variable {var!r}"
                ) from None

        return read_var
    if isinstance(expr, ast.PropAccess):
        var, key = expr.var, expr.key

        def read_prop(row: Row, params: dict) -> Any:
            target = row.get(var)
            if isinstance(target, NodeRef):
                return store.node_prop(target.id, key)
            if isinstance(target, RelRef):
                return store.rel_props(target.id).get(key)
            if target is None:
                return None
            raise CypherRuntimeError(
                f"{var!r} is not a node or relationship"
            )

        return read_prop
    if isinstance(expr, ast.UnaryOp):
        operand = _compile_expr(expr.operand, store)
        if expr.op == "NOT":
            return lambda row, params: not operand(row, params)

        def negate(row: Row, params: dict) -> Any:
            value = operand(row, params)
            return None if value is None else -value

        return negate
    if isinstance(expr, ast.IsNull):
        operand = _compile_expr(expr.operand, store)
        if expr.negated:
            return lambda row, params: operand(row, params) is not None
        return lambda row, params: operand(row, params) is None
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, store)
    if isinstance(expr, ast.FuncCall):
        return _compile_scalar_func(expr, store)
    raise CompileError(f"cannot compile expression {expr!r}")


def _compile_binary(expr: ast.BinaryOp, store: GraphStore) -> ValueFn:
    op = expr.op
    left = _compile_expr(expr.left, store)
    right = _compile_expr(expr.right, store)
    if op == "AND":
        return lambda row, params: bool(left(row, params)) and bool(
            right(row, params)
        )
    if op == "OR":
        return lambda row, params: bool(left(row, params)) or bool(
            right(row, params)
        )
    if op in _CMP:
        compare = _CMP[op]

        def run_compare(row: Row, params: dict) -> Any:
            lv, rv = left(row, params), right(row, params)
            if lv is None or rv is None:
                return False
            if isinstance(lv, NodeRef) or isinstance(rv, NodeRef):
                same = (
                    isinstance(lv, NodeRef)
                    and isinstance(rv, NodeRef)
                    and lv.id == rv.id
                )
                if op == "=":
                    return same
                if op == "<>":
                    return not same
                raise CypherRuntimeError("nodes are not ordered")
            return compare(lv, rv)

        return run_compare
    if op in _ARITH:
        apply = _ARITH[op]

        def run_arith(row: Row, params: dict) -> Any:
            lv, rv = left(row, params), right(row, params)
            if lv is None or rv is None:
                return None
            return apply(lv, rv)

        return run_arith
    raise CompileError(f"cannot compile operator {op!r}")


def _compile_scalar_func(expr: ast.FuncCall, store: GraphStore) -> ValueFn:
    if expr.name in AGGREGATE_FUNCS:
        name = expr.name

        def misuse(row: Row, params: dict) -> Any:
            raise CypherRuntimeError(f"aggregate {name}() outside RETURN")

        return misuse
    arg_fns = [_compile_expr(arg, store) for arg in expr.args]
    if expr.name == "length":

        def run_length(row: Row, params: dict) -> Any:
            (path,) = [fn(row, params) for fn in arg_fns]
            if not isinstance(path, PathRef):
                raise CypherRuntimeError("length() expects a path")
            return path.length

        return run_length
    if expr.name == "id":

        def run_id(row: Row, params: dict) -> Any:
            (ref,) = [fn(row, params) for fn in arg_fns]
            if isinstance(ref, (NodeRef, RelRef)):
                return ref.id
            raise CypherRuntimeError("id() expects a node or relationship")

        return run_id
    if expr.name == "labels":

        def run_labels(row: Row, params: dict) -> Any:
            (ref,) = [fn(row, params) for fn in arg_fns]
            if isinstance(ref, NodeRef):
                return list(store.node_labels(ref.id))
            raise CypherRuntimeError("labels() expects a node")

        return run_labels
    raise CompileError(f"cannot compile function {expr.name}()")
