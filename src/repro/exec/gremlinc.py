"""Gremlin step chains compiled to vectorized batch closures.

The Gremlin Server's interpreted path charges ``step_eval`` per
traverser per step — the TinkerPop iterator overhead the paper measures.
:func:`compile_traversal` walks a built step chain once and emits one
closure per step, chained as batch generators: a batch of traversers
flows through each closure with one ``vector_setup`` plus ``tuple_vec``
per emitted traverser, while data access still goes through the same
provider calls (and therefore the same storage charges) as the
interpreter.

Semantics are bit-identical to :mod:`repro.tinkerpop.traversal`: each
compiled step reproduces its interpreted step's traverser order, path
bookkeeping and error behavior.  Step budgets and evaluation-timeout
guards observe the same traverser counts via
:func:`repro.tinkerpop.traversal.tick_batch`.

Steps that cannot be compiled raise :class:`CompileError` and the
server falls back to the interpreter for that script:

* ``repeat()`` — data-dependent iteration (the shortest-path DNF shape;
  keeping it interpreted preserves the paper's timeout behavior),
* ``addV()`` / ``addE()`` / ``property()`` — writes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import replace
from typing import Any

from repro.exec.errors import CompileError
from repro.simclock.ledger import charge
from repro.tinkerpop.structure import Edge, GraphProvider, Vertex
from repro.tinkerpop.traversal import (
    AddEStep,
    AddVStep,
    AdjacentStep,
    CountStep,
    DedupStep,
    EdgeVertexStep,
    FilterStep,
    HasLabelStep,
    HasStep,
    IdStep,
    LimitStep,
    OrderStep,
    PathStep,
    PropertyStep,
    RepeatStep,
    SimplePathStep,
    Step,
    Traversal,
    TraversalError,
    Traverser,
    ValueMapStep,
    ValuesStep,
    VStep,
    _element_props,
    tick_batch,
)

#: a compiled traversal: call it to get the result objects
CompiledTraversal = Callable[[], list[Any]]

#: a step kernel: batches of traversers in, batches out
_StepKernel = Callable[
    [Iterator[list[Traverser]]], Iterator[list[Traverser]]
]


def compile_traversal(traversal: Traversal) -> CompiledTraversal:
    """Compile a built step chain into one vectorized closure.

    Raises :class:`CompileError` when any step has no batch kernel
    (writes, ``repeat()``); the caller falls back to the interpreter.
    """
    provider = traversal.provider
    if provider is None:
        raise CompileError("anonymous traversals cannot be compiled")
    # operator fusion: per-element predicate/transform steps run inside
    # the loop of the kernel feeding them, so only pipeline sources,
    # expansions, and materializing breakers pay a batch dispatch
    kernels = [
        _compile_step(step, provider, fused=index > 0)
        for index, step in enumerate(traversal.steps)
    ]

    def run() -> list[Any]:
        batches: Iterator[list[Traverser]] = iter([[Traverser(obj=None)]])
        for kernel in kernels:
            batches = kernel(batches)
        return [t.obj for batch in batches for t in batch]

    return run


def _compile_step(
    step: Step, provider: GraphProvider, fused: bool = False
) -> _StepKernel:
    # sources, expansions, and order() always charge their own dispatch
    if isinstance(step, VStep):
        return _compile_v(step, provider)
    if isinstance(step, AdjacentStep):
        return _compile_adjacent(step, provider)
    if isinstance(step, EdgeVertexStep):
        return _compile_edge_vertex(step, provider)
    if isinstance(step, OrderStep):
        return _compile_order(step, provider)
    # per-element steps fuse into the feeding kernel's loop
    if isinstance(step, HasStep):
        return _compile_has(step, provider, fused)
    if isinstance(step, HasLabelStep):
        return _compile_has_label(step, provider, fused)
    if isinstance(step, ValuesStep):
        return _compile_values(step, provider, fused)
    if isinstance(step, ValueMapStep):
        return _compile_value_map(provider, fused)
    if isinstance(step, IdStep):
        return _compile_id(fused)
    if isinstance(step, DedupStep):
        return _compile_dedup(fused)
    if isinstance(step, SimplePathStep):
        return _compile_simple_path(fused)
    if isinstance(step, PathStep):
        return _compile_path(fused)
    if isinstance(step, LimitStep):
        return _compile_limit(step, fused)
    if isinstance(step, CountStep):
        return _compile_count(fused)
    if isinstance(step, FilterStep):
        return _compile_filter(step, fused)
    if isinstance(step, RepeatStep):
        raise CompileError("repeat() is data-dependent iteration")
    if isinstance(step, (AddVStep, AddEStep, PropertyStep)):
        raise CompileError("write steps run interpreted")
    raise CompileError(f"no batch kernel for {type(step).__name__}")


# -- element steps -----------------------------------------------------------------


def _compile_v(step: VStep, provider: GraphProvider) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            charge("vector_setup")
            out: list[Traverser] = []
            for t in batch:
                if step.vid is not None:
                    vids: Any = (step.vid,)
                elif step.index_key is not None:
                    vids = provider.lookup(
                        step.label, step.index_key, step.index_value
                    )
                else:
                    vids = provider.vertices(step.label)
                for vid in vids:
                    vertex = Vertex(vid)
                    out.append(
                        replace(t, obj=vertex, path=t.path + (vertex,))
                    )
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


def _compile_has(
    step: HasStep, provider: GraphProvider, fused: bool = False
) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            # one property gather per unique vertex in the batch — the
            # interpreter re-reads per traverser occurrence (label'd
            # has() keeps per-traverser reads: the label gate must see
            # exactly the vertices the interpreter reads)
            vertex_props: dict[int, dict[str, Any]] = (
                {
                    vid: provider.vertex_props(vid)
                    for vid in dict.fromkeys(
                        t.obj.id
                        for t in batch
                        if isinstance(t.obj, Vertex)
                    )
                }
                if step.label is None
                else {}
            )
            out: list[Traverser] = []
            for t in batch:
                obj = t.obj
                if isinstance(obj, Vertex):
                    if step.label is not None and (
                        provider.vertex_label(obj.id) != step.label
                    ):
                        continue
                    props = (
                        vertex_props[obj.id]
                        if step.label is None
                        else provider.vertex_props(obj.id)
                    )
                    value = props.get(step.key)
                elif isinstance(obj, Edge):
                    value = provider.edge_props(obj.id).get(step.key)
                else:
                    raise TraversalError("has() needs an element")
                if step.predicate.test(value):
                    out.append(t)
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


def _compile_has_label(
    step: HasLabelStep, provider: GraphProvider, fused: bool = False
) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            out: list[Traverser] = []
            for t in batch:
                obj = t.obj
                if isinstance(obj, Vertex):
                    if provider.vertex_label(obj.id) == step.label:
                        out.append(t)
                elif isinstance(obj, Edge):
                    if provider.edge_label(obj.id) == step.label:
                        out.append(t)
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


def _compile_adjacent(
    step: AdjacentStep, provider: GraphProvider
) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            charge("vector_setup")
            out: list[Traverser] = []
            for t in batch:
                obj = t.obj
                if not isinstance(obj, Vertex):
                    raise TraversalError(
                        f"{step.direction}() needs a vertex, got {obj!r}"
                    )
                for eid, other in provider.adjacent(
                    obj.id, step.direction, step.label
                ):
                    element: Any = (
                        Edge(eid) if step.to_edge else Vertex(other)
                    )
                    out.append(
                        replace(t, obj=element, path=t.path + (element,))
                    )
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


def _compile_edge_vertex(
    step: EdgeVertexStep, provider: GraphProvider
) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            charge("vector_setup")
            out: list[Traverser] = []
            for t in batch:
                edge = t.obj
                if not isinstance(edge, Edge):
                    raise TraversalError(f"{step.which}() needs an edge")
                out_vid, in_vid = provider.edge_endpoints(edge.id)
                if step.which == "inV":
                    targets = [in_vid]
                elif step.which == "outV":
                    targets = [out_vid]
                else:  # otherV: the endpoint we did not come from
                    prev = None
                    for element in reversed(t.path[:-1]):
                        if isinstance(element, Vertex):
                            prev = element.id
                            break
                    targets = [in_vid if prev == out_vid else out_vid]
                for vid in targets:
                    vertex = Vertex(vid)
                    out.append(
                        replace(t, obj=vertex, path=t.path + (vertex,))
                    )
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


# -- value steps -------------------------------------------------------------------


def _compile_values(
    step: ValuesStep, provider: GraphProvider, fused: bool = False
) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            out: list[Traverser] = []
            for t in batch:
                props = _element_props(t.obj, provider)
                for key in step.keys:
                    value = props.get(key)
                    if value is not None:
                        out.append(replace(t, obj=value))
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


def _compile_value_map(
    provider: GraphProvider, fused: bool = False
) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            out = [
                replace(t, obj=dict(_element_props(t.obj, provider)))
                for t in batch
            ]
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


def _compile_id(fused: bool = False) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            out = [replace(t, obj=t.obj.id) for t in batch]
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


# -- stream steps ------------------------------------------------------------------


def _compile_dedup(fused: bool = False) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        seen: set = set()
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            out: list[Traverser] = []
            for t in batch:
                key = t.obj
                if isinstance(key, dict):
                    key = tuple(sorted(key.items()))
                if key not in seen:
                    seen.add(key)
                    out.append(t)
            # membership tests ride the per-item batch charge, exactly
            # as the interpreter folds them into its per-traverser tick
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


def _compile_simple_path(fused: bool = False) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            out: list[Traverser] = []
            for t in batch:
                elements = [
                    e for e in t.path if isinstance(e, (Vertex, Edge))
                ]
                if len(elements) == len(set(elements)):
                    out.append(t)
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


def _compile_path(fused: bool = False) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            out = [replace(t, obj=tuple(t.path)) for t in batch]
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel


def _compile_limit(
    step: LimitStep, fused: bool = False
) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        emitted = 0
        for batch in batches:
            if emitted >= step.limit:
                return
            take = batch[: step.limit - emitted]
            emitted += len(take)
            tick_batch(len(take))
            if not fused:
                charge("vector_setup")
            if take:
                charge("tuple_vec", len(take))
            yield take

    return kernel


def _compile_count(fused: bool = False) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        total = 0
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            total += len(batch)
        charge("tuple_vec")
        yield [Traverser(obj=total)]

    return kernel


def _compile_order(step: OrderStep, provider: GraphProvider) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        materialized: list[Traverser] = []
        for batch in batches:
            charge("vector_setup")
            materialized.extend(batch)
        tick_batch(1)

        def sort_key(t: Traverser) -> tuple[bool, Any]:
            obj = t.obj
            if step.key is None:
                value = obj
            else:
                value = _element_props(obj, provider).get(step.key)
            return (value is not None, value)

        materialized.sort(key=sort_key, reverse=step.descending)
        if materialized:
            charge("tuple_vec", len(materialized))
        yield materialized

    return kernel


def _compile_filter(
    step: FilterStep, fused: bool = False
) -> _StepKernel:
    def kernel(
        batches: Iterator[list[Traverser]],
    ) -> Iterator[list[Traverser]]:
        for batch in batches:
            tick_batch(len(batch))
            if not fused:
                charge("vector_setup")
            out = [t for t in batch if step.fn(t.obj)]
            if out:
                charge("tuple_vec", len(out))
            yield out

    return kernel
