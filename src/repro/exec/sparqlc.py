"""SPARQL BGPs compiled to vectorized join closures.

The interpreted executor re-sorts the remaining triple patterns on every
execution and walks the join row-at-a-time (``tuple_cpu`` per matched
triple).  :func:`compile_query` freezes the greedy pattern order at
compile time — the boundness progression is data-independent, because
every join binds all of its pattern's variables into every row — and
emits one closure per join/filter/projection stage.  Stages process row
batches (``vector_setup`` per batch, ``tuple_vec`` per emitted row)
while term-dictionary lookups and index scans go through the same
:class:`~repro.rdf.triples.TripleStore` calls as the interpreter, so
storage charges are identical in both modes.

The compiled order is exactly what the interpreter would compute with
the same statistics snapshot and ``order_mode``, so results (including
row order) are bit-identical.  The engine keys its closure cache by
``(order_mode, query text)`` and bumps the epoch on ``ANALYZE`` —
compiled orders can never outlive the statistics that chose them.

:class:`CompileError` (engine falls back to the interpreter):

* stats ordering when a pattern's *predicate* is a parameter — the
  order would depend on runtime parameter values,
* projection shapes the interpreter rejects at runtime (ORDER BY over
  ``*`` or aggregates, unselected ORDER BY variables, plain variables
  mixed with COUNT) — falling back preserves the interpreter's error,
* filter or term forms without a compiled equivalent.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.exec.batch import batched
from repro.exec.errors import CompileError
from repro.rdf.sparql import parser as ast
from repro.rdf.sparql.executor import SparqlExecutor, SparqlRuntimeError
from repro.rdf.triples import TripleStore
from repro.simclock.ledger import charge
from repro.stats.batching import choose_batch_size

#: a compiled SPARQL SELECT: params in, result rows out
CompiledSparql = Callable[[dict[str, Any] | None], list[tuple]]

Row = dict[str, Any]

#: (row, params) -> term value for a bound term
_TermFn = Callable[[Row, dict[str, Any]], Any]

#: a pipeline stage: (rows, params) -> rows
_Stage = Callable[[list[Row], dict[str, Any]], list[Row]]


def compile_query(
    query: ast.SparqlQuery,
    store: TripleStore,
    executor: SparqlExecutor,
) -> CompiledSparql:
    """Compile one SELECT against the executor's current ordering state.

    ``executor`` supplies ``order_mode``, the statistics snapshot and the
    estimate memo used to freeze the pattern order; it is not referenced
    by the returned closure.
    """
    ordered, bound_after = _order_patterns(query, executor)
    pending = list(query.filters)
    stages: list[_Stage] = []
    bound_before: set[str] = set()
    for pattern, bound in zip(ordered, bound_after):
        stages.append(_compile_join(pattern, store, bound_before))
        bound_before = bound
        still_pending = []
        for flt in pending:
            if _filter_vars(flt.expr) <= bound:
                stages.append(_compile_filter(flt.expr))
            else:
                still_pending.append(flt)
        pending = still_pending
    tail_filters = [_compile_filter(flt.expr) for flt in pending]
    all_bound = bound_after[-1] if bound_after else set()
    project = _compile_project(query, sorted(all_bound))

    def run(params: dict[str, Any] | None = None) -> list[tuple]:
        actual = params or {}
        rows: list[Row] = [{}]
        for stage in stages:
            rows = stage(rows, actual)
            if not rows:
                break
        for flt in tail_filters:
            rows = flt(rows, actual)
        return project(rows, actual)

    return run


# -- pattern ordering (compile time) -----------------------------------------------


def _order_patterns(
    query: ast.SparqlQuery, executor: SparqlExecutor
) -> tuple[list[ast.TriplePattern], list[set[str]]]:
    """Replay the interpreter's greedy loop with static boundness.

    Returns the frozen order plus the bound-variable set after each
    join.  Raises :class:`CompileError` when the order would depend on
    runtime parameters.
    """
    use_stats = (
        executor.order_mode == "stats" and executor.stats is not None
    )
    if use_stats:
        for pattern in query.patterns:
            if isinstance(pattern.p, ast.ParamTerm):
                raise CompileError(
                    "stats ordering of a parameterized predicate "
                    "depends on runtime parameter values"
                )
    patterns = list(query.patterns)
    bound: set[str] = set()
    ordered: list[ast.TriplePattern] = []
    bound_after: list[set[str]] = []
    while patterns:
        if executor.order_mode != "textual":
            if use_stats:
                patterns.sort(
                    key=lambda tp: executor._estimated_matches(
                        tp, bound, {}
                    )
                )
            else:
                patterns.sort(
                    key=lambda tp: -executor._boundness(tp, bound)
                )
        pattern = patterns.pop(0)
        ordered.append(pattern)
        for term in (pattern.s, pattern.p, pattern.o):
            if isinstance(term, ast.Var):
                bound.add(term.name)
        bound_after.append(set(bound))
    return ordered, bound_after


# -- terms -------------------------------------------------------------------------


def _compile_term(term: ast.Term, bound: set[str]) -> _TermFn | None:
    """A value getter for a bound term, or ``None`` when unbound."""
    if isinstance(term, ast.Var):
        name = term.name
        if name not in bound:
            return None
        return lambda row, params: row[name]
    if isinstance(term, ast.ParamTerm):
        name = term.name

        def param_value(row: Row, params: dict[str, Any]) -> Any:
            try:
                return params[name]
            except KeyError:
                raise SparqlRuntimeError(
                    f"missing parameter ${name}"
                ) from None

        return param_value
    if isinstance(term, (ast.Iri, ast.LiteralTerm)):
        value = term.value
        return lambda row, params: value
    raise CompileError(f"unknown term {term!r}")


# -- joins -------------------------------------------------------------------------


def _compile_join(
    pattern: ast.TriplePattern, store: TripleStore, bound: set[str]
) -> _Stage:
    # boundness at this stage is static: a term is bound iff it is a
    # constant, a parameter, or a variable some earlier pattern binds —
    # the caller compiles patterns in frozen join order, so every row
    # reaching this stage has exactly the same keys
    term_fns = [
        _compile_term(term, bound)
        for term in (pattern.s, pattern.p, pattern.o)
    ]
    var_terms = [
        (position, term.name)
        for position, term in enumerate((pattern.s, pattern.p, pattern.o))
        if isinstance(term, ast.Var)
    ]

    def stage(rows: list[Row], params: dict[str, Any]) -> list[Row]:
        out: list[Row] = []
        for batch in batched(rows, choose_batch_size(len(rows))):
            charge("vector_setup")
            emitted = 0
            for row in batch:
                lookup: list[int | None] = []
                missing_term = False
                for fn in term_fns:
                    if fn is None:
                        lookup.append(None)
                        continue
                    term_id = store.lookup_term(fn(row, params))
                    if term_id is None:
                        missing_term = True
                        break
                    lookup.append(term_id)
                if missing_term:
                    continue
                for ids in store.match_ids(*lookup):
                    new_row = dict(row)
                    ok = True
                    for position, name in var_terms:
                        value = store.term(ids[position])
                        if name in new_row:
                            if new_row[name] != value:
                                ok = False
                                break
                        else:
                            new_row[name] = value
                    if ok:
                        out.append(new_row)
                        emitted += 1
            if emitted:
                charge("tuple_vec", emitted)
        return out

    return stage


# -- filters -----------------------------------------------------------------------


def _filter_vars(expr: ast.FilterExpr) -> set[str]:
    if isinstance(expr, ast.Comparison):
        return {
            term.name
            for term in (expr.left, expr.right)
            if isinstance(term, ast.Var)
        }
    if isinstance(expr, ast.InFilter):
        return {
            term.name
            for term in (expr.needle, *expr.items)
            if isinstance(term, ast.Var)
        }
    if isinstance(expr, ast.BoolOp):
        return _filter_vars(expr.left) | _filter_vars(expr.right)
    if isinstance(expr, ast.NotOp):
        return _filter_vars(expr.operand)
    raise CompileError(f"unknown filter {expr!r}")


def _compile_filter(expr: ast.FilterExpr) -> _Stage:
    predicate = _compile_filter_expr(expr)

    def stage(rows: list[Row], params: dict[str, Any]) -> list[Row]:
        out: list[Row] = []
        for batch in batched(rows, choose_batch_size(len(rows))):
            charge("vector_setup")
            kept = [row for row in batch if predicate(row, params)]
            if kept:
                charge("tuple_vec", len(kept))
            out.extend(kept)
        return out

    return stage


def _compile_filter_expr(
    expr: ast.FilterExpr,
) -> Callable[[Row, dict[str, Any]], bool]:
    if isinstance(expr, ast.BoolOp):
        left = _compile_filter_expr(expr.left)
        right = _compile_filter_expr(expr.right)
        if expr.op == "AND":
            return lambda row, params: (
                left(row, params) and right(row, params)
            )
        return lambda row, params: left(row, params) or right(row, params)
    if isinstance(expr, ast.NotOp):
        operand = _compile_filter_expr(expr.operand)
        return lambda row, params: not operand(row, params)
    if isinstance(expr, ast.Comparison):
        left_fn = _compile_filter_term(expr.left)
        right_fn = _compile_filter_term(expr.right)
        op = expr.op
        if op not in ("=", "<>", "<", "<=", ">", ">="):
            raise CompileError(f"unknown comparison {op!r}")

        def compare(row: Row, params: dict[str, Any]) -> bool:
            left_v = left_fn(row, params)
            right_v = right_fn(row, params)
            if left_v is None or right_v is None:
                return False
            return {
                "=": left_v == right_v,
                "<>": left_v != right_v,
                "<": left_v < right_v,
                "<=": left_v <= right_v,
                ">": left_v > right_v,
                ">=": left_v >= right_v,
            }[op]

        return compare
    if isinstance(expr, ast.InFilter):
        needle_fn = _compile_filter_term(expr.needle)
        item_fns = [_compile_filter_term(item) for item in expr.items]
        negated = expr.negated

        def contains(row: Row, params: dict[str, Any]) -> bool:
            needle = needle_fn(row, params)
            values = [fn(row, params) for fn in item_fns]
            found = needle in values
            return not found if negated else found

        return contains
    raise CompileError(f"unknown filter {expr!r}")


def _compile_filter_term(term: ast.Term) -> _TermFn:
    """Filter terms resolve unbound variables to ``None`` (interpreted
    ``_resolve`` semantics), never raising on a missing row key."""
    if isinstance(term, ast.Var):
        name = term.name
        return lambda row, params: row.get(name)
    fn = _compile_term(term, set())
    assert fn is not None
    return fn


# -- projection --------------------------------------------------------------------


def _compile_project(
    query: ast.SparqlQuery, all_vars: list[str]
) -> Callable[[list[Row], dict[str, Any]], list[tuple]]:
    aggregate = any(item.count for item in query.items)
    if query.star:
        names = list(all_vars)
    elif aggregate:
        if any(not item.count for item in query.items):
            raise CompileError(
                "mixing plain variables with COUNT needs GROUP BY"
            )
        names = []
    else:
        names = [item.var.name for item in query.items]  # type: ignore[union-attr]
    order_indexes: list[tuple[int, bool]] = []
    if query.order_by:
        if query.star or aggregate:
            raise CompileError(
                "ORDER BY requires explicit SELECT variables"
            )
        for order in query.order_by:
            if order.var.name not in names:
                raise CompileError(
                    f"ORDER BY variable ?{order.var.name} not selected"
                )
            order_indexes.append(
                (names.index(order.var.name), order.descending)
            )
    agg_fns = _compile_aggregates(query) if aggregate else None

    def project(rows: list[Row], params: dict[str, Any]) -> list[tuple]:
        if query.star and not rows:
            return []
        if agg_fns is not None:
            projected = [tuple(fn(rows) for fn in agg_fns)]
        else:
            projected = []
            for batch in batched(rows, choose_batch_size(len(rows))):
                charge("vector_setup")
                chunk = [
                    tuple(row.get(n) for n in names) for row in batch
                ]
                if chunk:
                    charge("tuple_vec", len(chunk))
                projected.extend(chunk)
        if query.distinct:
            seen: set[tuple] = set()
            unique = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            # no hash_probe: the interpreter's DISTINCT folds membership
            # into its per-value charge, and parity is per dialect
            projected = unique
        for idx, descending in reversed(order_indexes):
            projected.sort(
                key=lambda r: (r[idx] is not None, r[idx]),
                reverse=descending,
            )
        if query.limit is not None:
            projected = projected[: query.limit]
        return projected

    return project


def _compile_aggregates(
    query: ast.SparqlQuery,
) -> list[Callable[[list[Row]], Any]]:
    fns: list[Callable[[list[Row]], Any]] = []
    for item in query.items:
        if item.var is None:
            fns.append(len)
        elif item.count_distinct:
            name = item.var.name
            fns.append(
                lambda rows, name=name: len(
                    {
                        row[name]
                        for row in rows
                        if row.get(name) is not None
                    }
                )
            )
        else:
            name = item.var.name
            fns.append(
                lambda rows, name=name: sum(
                    1 for row in rows if row.get(name) is not None
                )
            )
    return fns
