"""The batch-at-a-time calling convention.

A *kernel* is a closure ``(ctx) -> Iterator[list[item]]`` pulling
bounded batches from its input kernel(s).  The pull model keeps the
interpreter's laziness at batch granularity: a LIMIT stops drawing
batches, so an eager evaluation cliff (compute-everything-then-
truncate) cannot appear — the worst case over-computes one batch.

Cost accounting: each kernel charges one ``vector_setup`` per batch it
dispatches plus ``tuple_vec`` per item in it, replacing the
interpreters' per-tuple charges (``tuple_cpu``, ``cypher_row``,
``step_eval``).  Storage work is charged by the batch read APIs the
kernels call, exactly as on the interpreted path — the saving there
comes from deduplicated accesses, never from dropped charges.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TypeVar

from repro.simclock.ledger import charge

T = TypeVar("T")


def charge_batch(count: int) -> None:
    """Charge one dispatched batch of ``count`` items."""
    charge("vector_setup")
    if count:
        charge("tuple_vec", count)


def batched(items: Iterable[T], size: int) -> Iterator[list[T]]:
    """Chunk ``items`` into lists of at most ``size`` (no charging)."""
    batch: list[T] = []
    for item in items:
        batch.append(item)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def flatten(batches: Iterable[list[T]]) -> list[T]:
    """Materialize a batch stream into one list."""
    return [item for batch in batches for item in batch]
