"""Two-phase locking: shared/exclusive locks with deadlock detection."""

from __future__ import annotations

import enum
from collections import defaultdict
from collections.abc import Iterable
from typing import Hashable

from repro.sanitizer import runtime
from repro.simclock.ledger import charge


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


class LockConflict(Exception):
    """Raised when a lock cannot be granted immediately.

    Carries the conflicting holders so the simulation harness can decide how
    long the requester waits (or whether to abort it).
    """

    def __init__(self, resource: Hashable, holders: set[int]) -> None:
        super().__init__(f"lock conflict on {resource!r}; held by {holders}")
        self.resource = resource
        self.holders = holders


class DeadlockError(Exception):
    """Raised when a requested wait would close a cycle of waiters."""

    def __init__(self, cycle: list[int]) -> None:
        super().__init__(f"deadlock among transactions {cycle}")
        self.cycle = cycle


class _LockState:
    __slots__ = ("holders",)

    def __init__(self) -> None:
        self.holders: dict[int, LockMode] = {}


class LockManager:
    """Grants S/X locks to transaction ids; strict two-phase discipline."""

    def __init__(self) -> None:
        self._locks: dict[Hashable, _LockState] = {}
        self._held_by_txn: dict[int, set[Hashable]] = defaultdict(set)
        self._waits_for: dict[int, set[int]] = defaultdict(set)

    # -- acquisition --------------------------------------------------------

    def acquire(self, txn_id: int, resource: Hashable, mode: LockMode) -> None:
        """Grant the lock or raise :class:`LockConflict`.

        Re-acquiring an already-held lock is a no-op; a SHARED holder asking
        for EXCLUSIVE is upgraded when no other holder exists.
        """
        charge("lock_acquire")
        state = self._locks.get(resource)
        if state is None:
            state = self._locks[resource] = _LockState()
        held = state.holders.get(txn_id)
        if held is LockMode.EXCLUSIVE or held is mode:
            return
        others = {t for t in state.holders if t != txn_id}
        if held is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            if others:
                raise LockConflict(resource, others)
            state.holders[txn_id] = LockMode.EXCLUSIVE
            return
        if others and not all(
            mode.compatible_with(state.holders[t]) for t in others
        ):
            raise LockConflict(resource, others)
        state.holders[txn_id] = mode
        self._held_by_txn[txn_id].add(resource)
        if runtime.TRACE is not None:
            runtime.TRACE.lock_acquired(txn_id, resource, mode.value)

    def acquire_many(
        self, txn_id: int, resources: Iterable[Hashable], mode: LockMode
    ) -> None:
        """Acquire several locks in one global sorted order.

        Every multi-resource caller sorting the same way cannot deadlock
        against another such caller: both request locks along the same
        total order.  ``repr`` gives that order for arbitrary (possibly
        mixed-type) resource keys; duplicates collapse to one acquire.
        """
        unique = {repr(resource): resource for resource in resources}
        for key in sorted(unique):
            self.acquire(txn_id, unique[key], mode)

    def try_acquire(
        self, txn_id: int, resource: Hashable, mode: LockMode
    ) -> bool:
        """Like :meth:`acquire` but returns ``False`` instead of raising."""
        try:
            self.acquire(txn_id, resource, mode)
            return True
        except LockConflict:
            return False

    # -- release ---------------------------------------------------------------

    def release_all(self, txn_id: int) -> int:
        """Drop every lock held by ``txn_id``; returns how many."""
        resources = self._held_by_txn.pop(txn_id, set())
        for resource in resources:
            state = self._locks.get(resource)
            if state is not None:
                state.holders.pop(txn_id, None)
                if not state.holders:
                    del self._locks[resource]
            if runtime.TRACE is not None:
                runtime.TRACE.lock_released(txn_id, resource)
        self._waits_for.pop(txn_id, None)
        for waiters in self._waits_for.values():
            waiters.discard(txn_id)
        return len(resources)

    # -- introspection -----------------------------------------------------------

    def holders(self, resource: Hashable) -> dict[int, LockMode]:
        state = self._locks.get(resource)
        return dict(state.holders) if state else {}

    def locks_held(self, txn_id: int) -> set[Hashable]:
        return set(self._held_by_txn.get(txn_id, set()))

    # -- deadlock detection --------------------------------------------------------

    def register_wait(self, waiter: int, blockers: set[int]) -> None:
        """Record that ``waiter`` waits on ``blockers``; detect cycles.

        Raises :class:`DeadlockError` (leaving the graph unchanged) when the
        new edges would close a cycle.
        """
        new_edges = set(blockers) - {waiter}
        for blocker in new_edges:
            cycle = self._path(blocker, waiter)
            if cycle is not None:
                raise DeadlockError([waiter, *cycle])
        self._waits_for[waiter] |= new_edges

    def clear_wait(self, waiter: int) -> None:
        self._waits_for.pop(waiter, None)

    def _path(self, source: int, target: int) -> list[int] | None:
        """DFS path source -> target in the wait-for graph, if any."""
        stack: list[tuple[int, list[int]]] = [(source, [source])]
        seen = set()
        while stack:
            node, path = stack.pop()
            if node == target:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in self._waits_for.get(node, ()):
                stack.append((nxt, path + [nxt]))
        return None
