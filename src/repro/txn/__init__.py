"""Transactions: lock manager and transaction lifecycle.

Real execution in this reproduction is single-threaded (concurrency is
simulated), so locks never *block* a Python thread; conflicting acquisition
raises :class:`LockConflict`, and the discrete-event harness turns conflicts
into simulated waiting.  The wait-for graph still detects genuine deadlocks
between simulated clients.
"""

from repro.txn.locks import (
    DeadlockError,
    LockConflict,
    LockManager,
    LockMode,
)
from repro.txn.manager import Transaction, TransactionManager, TxnState
from repro.txn.oracle import (
    ORACLE,
    Snapshot,
    TimestampOracle,
    held_snapshot,
    read_view,
)

__all__ = [
    "LockMode",
    "LockConflict",
    "DeadlockError",
    "LockManager",
    "ORACLE",
    "Snapshot",
    "TimestampOracle",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "held_snapshot",
    "read_view",
]
