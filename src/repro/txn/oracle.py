"""The MVCC timestamp oracle and snapshot read views.

Writers keep strict two-phase locking (:mod:`repro.txn.locks`); readers
get multi-version snapshots instead of locks.  The oracle hands out a
monotonically increasing logical timestamp: every committed write is
stamped with :meth:`TimestampOracle.advance`, and a reader's *snapshot*
is just the last stamp issued when the read began.  The visibility rule
(:mod:`repro.storage.mvcc`) is then one comparison — a record is visible
when its begin timestamp is at or below the snapshot and it was not
deleted at or before it.

Two usage shapes:

* **per-statement views** — every engine facade wraps each read-only
  statement in :func:`read_view`, so a statement sees one consistent
  snapshot and never takes a lock.  Nested views reuse the enclosing
  snapshot (a facade calling another facade, e.g. Sqlg over SQL).
* **held snapshots** — long-running readers (the GC regression surface,
  ``repro validate --mvcc``) take an explicit snapshot with
  :meth:`TimestampOracle.begin` and run under :func:`reading`; the
  active-snapshot set lower-bounds the garbage-collection watermark so
  their versions are never reclaimed from under them.

The module-level :data:`CURRENT` mirrors the sanitizer's
``runtime.TRACE`` global-hook pattern: stores consult it on their read
paths with a cheap ``is None`` check, so the machinery costs nothing
when no snapshot is active.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.simclock.ledger import charge

#: isolation levels every facade accepts
ISOLATION_LEVELS = ("snapshot", "read-committed")


def check_isolation_level(level: str) -> str:
    """Validate and return ``level`` (shared by every facade setter)."""
    if level not in ISOLATION_LEVELS:
        raise ValueError(
            f"unknown isolation level: {level!r} "
            f"(expected one of {ISOLATION_LEVELS})"
        )
    return level


@dataclass(frozen=True)
class Snapshot:
    """An immutable read view: everything stamped <= ``read_ts``."""

    read_ts: int


class TimestampOracle:
    """Issues write stamps and tracks the active snapshot set."""

    def __init__(self) -> None:
        self._last = 0
        #: read_ts -> number of active snapshots holding it
        self._active: dict[int, int] = {}

    # -- write side ---------------------------------------------------------

    def advance(self) -> int:
        """Allocate the stamp for one committed write."""
        self._last += 1
        return self._last

    def last(self) -> int:
        """The most recent stamp issued (the freshest possible view)."""
        return self._last

    # -- read side ----------------------------------------------------------

    def begin(self) -> Snapshot:
        """Open a snapshot at the current stamp."""
        charge("ts_alloc")
        snapshot = Snapshot(self._last)
        self._active[snapshot.read_ts] = (
            self._active.get(snapshot.read_ts, 0) + 1
        )
        return snapshot

    def release(self, snapshot: Snapshot) -> None:
        """Close a snapshot opened with :meth:`begin`."""
        count = self._active.get(snapshot.read_ts, 0)
        if count <= 1:
            self._active.pop(snapshot.read_ts, None)
        else:
            self._active[snapshot.read_ts] = count - 1

    def active_count(self) -> int:
        return sum(self._active.values())

    def oldest_active(self) -> int | None:
        """The smallest read_ts still held, or None when idle."""
        return min(self._active) if self._active else None

    def watermark(self) -> int:
        """Versions at or below this stamp are invisible to no one.

        With active snapshots this is the oldest held read timestamp
        (nothing an active reader might still need may be collected);
        idle, it is simply the latest stamp.
        """
        oldest = self.oldest_active()
        return self._last if oldest is None else oldest


#: the process-wide oracle (the simulation is single-process)
ORACLE = TimestampOracle()

#: the snapshot the current read runs under, or None (stores check this
#: on every read path; the common no-snapshot case is one ``is`` test)
CURRENT: Snapshot | None = None


def snapshots_active() -> bool:
    """Whether any snapshot is open (write paths stamp only if so)."""
    return bool(ORACLE._active)


def stale_reads() -> bool:
    """True when the current snapshot predates the latest committed write.

    Result caches (neighborhood caches, the cluster coordinator cache)
    hold *current-state* answers; a reader holding an old snapshot must
    bypass them or it would observe data newer than its view.
    """
    return CURRENT is not None and CURRENT.read_ts < ORACLE.last()


def read_mode() -> str:
    """The protection mode recorded on traced read events.

    ``"snapshot"`` reads are immune to read/write races by construction
    (they never observe in-flight writes); bare ``""`` reads are race
    candidates for the QA601 lockset/happens-before analysis.
    """
    return "snapshot" if CURRENT is not None else ""


@contextmanager
def reading(snapshot: Snapshot) -> Iterator[Snapshot]:
    """Run the block's reads under an already-open snapshot."""
    global CURRENT
    previous = CURRENT
    CURRENT = snapshot
    try:
        yield snapshot
    finally:
        CURRENT = previous


@contextmanager
def held_snapshot() -> Iterator[Snapshot]:
    """Hold one snapshot across many statements (a long-running reader).

    While the block runs, every facade-level :func:`read_view` nests
    inside this snapshot, and the GC watermark cannot pass it.
    """
    snapshot = ORACLE.begin()
    try:
        with reading(snapshot):
            yield snapshot
    finally:
        ORACLE.release(snapshot)


@contextmanager
def read_view(level: str = "snapshot") -> Iterator[Snapshot | None]:
    """A per-statement read view at the facade's isolation level.

    Under ``"snapshot"`` this opens a snapshot for the statement (unless
    one is already active — nested facades share the outer view).  Under
    ``"read-committed"`` reads simply observe the latest committed
    state: no snapshot, no locks — the fallback level trades repeatable
    reads for zero versioning overhead.
    """
    if CURRENT is not None or level != "snapshot":
        yield CURRENT
        return
    snapshot = ORACLE.begin()
    try:
        with reading(snapshot):
            yield snapshot
    finally:
        ORACLE.release(snapshot)
