"""Transaction lifecycle: begin / commit / abort with undo logging."""

from __future__ import annotations

import enum
from collections.abc import Callable

from repro.sanitizer import runtime
from repro.simclock.ledger import charge
from repro.storage.wal import WriteAheadLog
from repro.txn.locks import LockManager


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work.  Engines append undo actions as they modify state."""

    def __init__(self, txn_id: int, manager: "TransactionManager") -> None:
        self.txn_id = txn_id
        self._manager = manager
        self.state = TxnState.ACTIVE
        self._undo: list[Callable[[], None]] = []

    def on_abort(self, undo: Callable[[], None]) -> None:
        """Register an action that reverses a modification on abort."""
        self._require_active()
        self._undo.append(undo)

    def commit(self) -> None:
        self._manager.commit(self)

    def abort(self) -> None:
        self._manager.abort(self)

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise RuntimeError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transaction({self.txn_id}, {self.state.value})"


class TransactionManager:
    """Creates transactions and drives commit/abort protocol.

    When constructed with a WAL, commit forces the log (the ``wal_fsync``
    charge is the dominant per-update durability cost in the Figure 3
    experiment); engines without one (e.g. the Cassandra-backed store)
    pass ``wal=None``.
    """

    def __init__(
        self,
        locks: LockManager | None = None,
        wal: WriteAheadLog | None = None,
    ) -> None:
        self.locks = locks or LockManager()
        self.wal = wal
        self._next_txn_id = 1
        self.committed = 0
        self.aborted = 0

    def begin(self) -> Transaction:
        charge("txn_begin")
        txn = Transaction(self._next_txn_id, self)
        self._next_txn_id += 1
        if runtime.TRACE is not None:
            runtime.TRACE.txn_begin(txn.txn_id)
        return txn

    def commit(self, txn: Transaction) -> None:
        txn._require_active()
        charge("txn_commit")
        if self.wal is not None:
            self.wal.commit()
        txn.state = TxnState.COMMITTED
        txn._undo.clear()
        if runtime.TRACE is not None:
            runtime.TRACE.txn_commit(txn.txn_id)
        self.locks.release_all(txn.txn_id)
        self.committed += 1

    def abort(self, txn: Transaction) -> None:
        txn._require_active()
        for undo in reversed(txn._undo):
            undo()
        txn.state = TxnState.ABORTED
        txn._undo.clear()
        if runtime.TRACE is not None:
            runtime.TRACE.txn_abort(txn.txn_id)
        self.locks.release_all(txn.txn_id)
        self.aborted += 1
