"""Random distributions used by the datagen (all seeded, all deterministic)."""

from __future__ import annotations

import random


def power_law_int(
    rng: random.Random, minimum: int, maximum: int, alpha: float = 2.2
) -> int:
    """Sample an integer in ``[minimum, maximum]`` from a power law.

    Uses inverse-CDF sampling of a continuous Pareto-like density
    ``p(x) ~ x^-alpha`` truncated to the range; degree-like quantities in
    social networks (friends, posts per forum, replies per post) follow
    this shape.
    """
    if minimum < 1:
        raise ValueError("minimum must be >= 1 for a power law")
    if maximum < minimum:
        raise ValueError("maximum must be >= minimum")
    if maximum == minimum:
        return minimum
    u = rng.random()
    lo = float(minimum)
    hi = float(maximum) + 1.0
    exp = 1.0 - alpha
    x = (lo**exp + u * (hi**exp - lo**exp)) ** (1.0 / exp)
    return min(maximum, max(minimum, int(x)))


def zipf_choice(rng: random.Random, n: int, skew: float = 1.0) -> int:
    """Pick an index in ``[0, n)`` with Zipfian popularity (0 most popular).

    Implemented by inverse-CDF over the harmonic-like weights; popularity
    of tags, places, and communities is Zipf-distributed in real social
    data.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return 0
    # approximate inverse CDF for the continuous analogue
    u = rng.random()
    if skew == 1.0:
        # CDF(x) ~ ln(1+x)/ln(1+n)
        import math

        return min(n - 1, int(math.expm1(u * math.log1p(n))))
    exp = 1.0 - skew
    x = ((n**exp - 1.0) * u + 1.0) ** (1.0 / exp) - 1.0
    return min(n - 1, max(0, int(x)))


def date_between(rng: random.Random, start_ms: int, end_ms: int) -> int:
    """Uniform timestamp in ``[start_ms, end_ms)``."""
    if end_ms <= start_ms:
        return start_ms
    return rng.randrange(start_ms, end_ms)


def date_skewed_early(
    rng: random.Random, start_ms: int, end_ms: int, bias: float = 2.0
) -> int:
    """Timestamp in ``[start_ms, end_ms)`` biased towards ``start_ms``.

    Social activity tends to follow entity creation closely (you post to a
    forum soon after joining it); without this bias, chained sampling
    (person -> forum -> post -> comment) compounds towards the end of the
    simulation window and inflates the update stream.
    """
    if end_ms <= start_ms:
        return start_ms
    span = end_ms - start_ms
    return start_ms + int(span * (rng.random() ** bias))
