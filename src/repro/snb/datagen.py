"""The synthetic social-network generator.

Mirrors the LDBC SNB datagen's two outputs:

* an **initial snapshot** — everything created before the cutoff date,
  bulk-loaded into each system under test;
* an **update stream** — creation events after the cutoff, each carrying a
  *dependency timestamp* (the latest creation time among referenced
  entities) for dependency-tracked scheduling.

Scaling: the paper's SF3 graph has ~10M vertices / 64M edges and SF10 has
~34M / 217M.  ``GeneratorConfig.scale_divisor`` (default 1000) shrinks
those to laptop size while preserving per-person rates, degree
distributions, and the SF10/SF3 ratio; every benchmark output reports the
divisor used.

Realism knobs borrowed from LDBC: power-law friend/post/comment degrees,
friendship correlation by city and shared interest, Zipf tag popularity,
reply trees on posts, and activity windows anchored to entity creation
dates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.snb import dictionaries as dicts
from repro.snb.distributions import (
    date_between,
    date_skewed_early,
    power_law_int,
    zipf_choice,
)
from repro.snb.schema import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Organisation,
    Person,
    Place,
    Post,
    Tag,
    TagClass,
    UpdateEvent,
    UpdateKind,
    FORUM_ID_BASE,
    MESSAGE_ID_BASE,
    ORGANISATION_ID_BASE,
    PERSON_ID_BASE,
    PLACE_ID_BASE,
    TAG_ID_BASE,
    TAGCLASS_ID_BASE,
)

SIM_START_MS = 1262304000000  # 2010-01-01
SIM_END_MS = 1356998400000  # 2013-01-01
_DAY_MS = 86_400_000


@dataclass(frozen=True)
class GeneratorConfig:
    """Datagen parameters.

    ``scale_factor`` follows the paper (3 and 10); ``scale_divisor``
    shrinks the paper-scale graph (divisor 1000 -> SF3 is ~10k vertices /
    ~65k edges).
    """

    scale_factor: float = 3.0
    scale_divisor: float = 1000.0
    seed: int = 42
    update_fraction: float = 0.1

    @property
    def person_count(self) -> int:
        scaled = 250.0 * (self.scale_factor / 3.0) * (1000.0 / self.scale_divisor)
        return max(30, round(scaled))


@dataclass
class SnbDataset:
    """The generated network: static snapshot + update stream."""

    config: GeneratorConfig
    cutoff_ms: int
    # static world
    places: list[Place] = field(default_factory=list)
    tag_classes: list[TagClass] = field(default_factory=list)
    tags: list[Tag] = field(default_factory=list)
    organisations: list[Organisation] = field(default_factory=list)
    # dynamic entities in the initial snapshot
    persons: list[Person] = field(default_factory=list)
    knows: list[Knows] = field(default_factory=list)
    forums: list[Forum] = field(default_factory=list)
    memberships: list[ForumMembership] = field(default_factory=list)
    posts: list[Post] = field(default_factory=list)
    comments: list[Comment] = field(default_factory=list)
    likes: list[Like] = field(default_factory=list)
    # events after the cutoff
    updates: list[UpdateEvent] = field(default_factory=list)

    # -- statistics (Table 1) ---------------------------------------------------

    def vertex_count(self) -> int:
        return (
            len(self.places)
            + len(self.tag_classes)
            + len(self.tags)
            + len(self.organisations)
            + len(self.persons)
            + len(self.forums)
            + len(self.posts)
            + len(self.comments)
        )

    def edge_count(self) -> int:
        person_located = len(self.persons)
        message_located = len(self.posts) + len(self.comments)
        study_work = sum(
            (p.university is not None) + (p.company is not None)
            for p in self.persons
        )
        interests = sum(len(p.interests) for p in self.persons)
        message_tags = sum(len(m.tags) for m in self.posts) + sum(
            len(m.tags) for m in self.comments
        )
        forum_tags = sum(len(f.tags) for f in self.forums)
        place_hierarchy = sum(1 for p in self.places if p.part_of is not None)
        tagclass_edges = sum(
            1 for tc in self.tag_classes if tc.subclass_of is not None
        ) + len(self.tags)
        return (
            len(self.knows)
            + len(self.memberships)
            + len(self.forums)  # hasModerator
            + len(self.posts)  # containerOf
            + len(self.posts)
            + len(self.comments)  # hasCreator
            + len(self.comments)  # replyOf
            + len(self.likes)
            + person_located
            + message_located
            + study_work
            + interests
            + message_tags
            + forum_tags
            + place_hierarchy
            + tagclass_edges
        )

    def message_ids(self) -> list[int]:
        return [p.id for p in self.posts] + [c.id for c in self.comments]


def generate(config: GeneratorConfig | None = None) -> SnbDataset:
    """Run the full generation pipeline (deterministic for a given config)."""
    config = config or GeneratorConfig()
    return _Generator(config).run()


class _Generator:
    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        cutoff_window = SIM_END_MS - SIM_START_MS
        self.cutoff_ms = SIM_END_MS - int(
            cutoff_window * config.update_fraction
        )
        self.dataset = SnbDataset(config=config, cutoff_ms=self.cutoff_ms)
        self._message_id = MESSAGE_ID_BASE
        # everything generated, pre-split (creation date decides the side)
        self._all_persons: list[Person] = []
        self._all_knows: list[Knows] = []
        self._all_forums: list[Forum] = []
        self._all_memberships: list[ForumMembership] = []
        self._all_posts: list[Post] = []
        self._all_comments: list[Comment] = []
        self._all_likes: list[Like] = []
        self._creation: dict[int, int] = {}  # entity id -> creation ms

    def run(self) -> SnbDataset:
        self._gen_places()
        self._gen_tags()
        self._gen_organisations()
        self._gen_persons()
        self._gen_knows()
        self._gen_forums_and_memberships()
        self._gen_messages()
        self._gen_likes()
        self._split()
        return self.dataset

    # -- static world ----------------------------------------------------------

    def _gen_places(self) -> None:
        places = self.dataset.places
        next_id = PLACE_ID_BASE
        continent_ids: dict[str, int] = {}
        self.city_ids: list[int] = []
        self.country_of_city: dict[int, int] = {}
        self.country_ids: list[int] = []
        for continent, country, cities in dicts.PLACES:
            if continent not in continent_ids:
                places.append(Place(next_id, continent, "continent", None))
                continent_ids[continent] = next_id
                next_id += 1
            country_id = next_id
            places.append(
                Place(country_id, country, "country", continent_ids[continent])
            )
            self.country_ids.append(country_id)
            next_id += 1
            for city in cities:
                places.append(Place(next_id, city, "city", country_id))
                self.city_ids.append(next_id)
                self.country_of_city[next_id] = country_id
                next_id += 1

    def _gen_tags(self) -> None:
        class_ids: dict[str, int] = {}
        next_id = TAGCLASS_ID_BASE
        for name, parent in dicts.TAG_CLASSES:
            self.dataset.tag_classes.append(
                TagClass(next_id, name, class_ids.get(parent))
            )
            class_ids[name] = next_id
            next_id += 1
        next_tag = TAG_ID_BASE
        for name, class_name in dicts.TAGS:
            self.dataset.tags.append(Tag(next_tag, name, class_ids[class_name]))
            next_tag += 1
        self.tag_ids = [t.id for t in self.dataset.tags]

    def _gen_organisations(self) -> None:
        next_id = ORGANISATION_ID_BASE
        self.universities_by_city: dict[int, int] = {}
        self.company_ids: list[int] = []
        city_names = {p.id: p.name for p in self.dataset.places}
        for city_id in self.city_ids:
            name = f"University_of_{city_names[city_id]}"
            self.dataset.organisations.append(
                Organisation(next_id, name, "university", city_id)
            )
            self.universities_by_city[city_id] = next_id
            next_id += 1
        for country_id in self.country_ids:
            for suffix in dicts.COMPANY_SUFFIXES[:3]:
                name = f"{city_names[country_id]}_{suffix}"
                self.dataset.organisations.append(
                    Organisation(next_id, name, "company", country_id)
                )
                self.company_ids.append(next_id)
                next_id += 1

    # -- persons -----------------------------------------------------------------

    def _gen_persons(self) -> None:
        rng = self.rng
        n = self.config.person_count
        for i in range(n):
            person_id = PERSON_ID_BASE + i
            city = self.city_ids[zipf_choice(rng, len(self.city_ids), 0.9)]
            creation = date_skewed_early(
                rng, SIM_START_MS, SIM_END_MS - 30 * _DAY_MS, bias=2.0
            )
            interests = sorted(
                {
                    self.tag_ids[zipf_choice(rng, len(self.tag_ids))]
                    for _ in range(power_law_int(rng, 2, 24, alpha=1.8))
                }
            )
            person = Person(
                id=person_id,
                first_name=rng.choice(dicts.FIRST_NAMES),
                last_name=rng.choice(dicts.LAST_NAMES),
                gender=rng.choice(dicts.GENDERS),
                birthday=date_between(
                    rng, SIM_START_MS - 50 * 365 * _DAY_MS,
                    SIM_START_MS - 18 * 365 * _DAY_MS,
                ),
                creation_date=creation,
                location_ip=self._random_ip(),
                browser_used=rng.choice(dicts.BROWSERS),
                city=city,
                speaks=sorted(
                    set(rng.sample(dicts.LANGUAGES, rng.randint(1, 3)))
                ),
                emails=[f"person{i}@example.org"],
                interests=interests,
            )
            if rng.random() < 0.75:
                person.university = self.universities_by_city[city]
                person.class_year = rng.randint(1995, 2012)
            if rng.random() < 0.6:
                person.company = rng.choice(self.company_ids)
                person.work_from = rng.randint(2000, 2012)
            self._all_persons.append(person)
            self._creation[person_id] = creation
        self.persons_by_city: dict[int, list[Person]] = {}
        self.persons_by_interest: dict[int, list[Person]] = {}
        for person in self._all_persons:
            self.persons_by_city.setdefault(person.city, []).append(person)
            for tag in person.interests[:3]:
                self.persons_by_interest.setdefault(tag, []).append(person)

    def _random_ip(self) -> str:
        rng = self.rng
        return ".".join(str(rng.randint(1, 254)) for _ in range(4))

    # -- friendships ---------------------------------------------------------------

    def _gen_knows(self) -> None:
        """Correlated power-law friendships.

        60% of candidate picks come from the same city, 25% from a shared
        interest, 15% uniformly — mirroring LDBC's correlation dimensions.
        """
        rng = self.rng
        persons = self._all_persons
        max_degree = max(8, len(persons) // 3)
        targets = {
            p.id: power_law_int(rng, 3, max_degree, alpha=1.6)
            for p in persons
        }
        adjacency: dict[int, set[int]] = {p.id: set() for p in persons}

        def candidate_for(person: Person) -> Person:
            roll = rng.random()
            if roll < 0.60:
                pool = self.persons_by_city.get(person.city, persons)
            elif roll < 0.85 and person.interests:
                tag = rng.choice(person.interests[:3])
                pool = self.persons_by_interest.get(tag, persons)
            else:
                pool = persons
            return pool[rng.randrange(len(pool))]

        for person in persons:
            attempts = 0
            while (
                len(adjacency[person.id]) < targets[person.id]
                and attempts < targets[person.id] * 6
            ):
                attempts += 1
                other = candidate_for(person)
                if other.id == person.id or other.id in adjacency[person.id]:
                    continue
                if len(adjacency[other.id]) >= targets[other.id] * 2:
                    continue
                adjacency[person.id].add(other.id)
                adjacency[other.id].add(person.id)
                creation = date_skewed_early(
                    rng,
                    max(person.creation_date, other.creation_date),
                    SIM_END_MS,
                    bias=1.8,
                )
                first, second = sorted((person.id, other.id))
                self._all_knows.append(Knows(first, second, creation))
        self.adjacency = adjacency

    # -- forums ----------------------------------------------------------------------

    def _gen_forums_and_memberships(self) -> None:
        rng = self.rng
        next_forum = FORUM_ID_BASE
        persons_by_id = {p.id: p for p in self._all_persons}
        self.forum_members: dict[int, list[int]] = {}

        # every person gets a wall; members are their friends
        for person in self._all_persons:
            forum = Forum(
                id=next_forum,
                title=f"Wall of {person.first_name} {person.last_name}",
                creation_date=person.creation_date,
                moderator=person.id,
                tags=person.interests[:3],
            )
            next_forum += 1
            self._all_forums.append(forum)
            self._creation[forum.id] = forum.creation_date
            members = [person.id]
            for friend_id in sorted(self.adjacency[person.id]):
                friend = persons_by_id[friend_id]
                join = date_skewed_early(
                    rng,
                    max(forum.creation_date, friend.creation_date),
                    SIM_END_MS,
                    bias=1.8,
                )
                self._all_memberships.append(
                    ForumMembership(forum.id, friend_id, join)
                )
                members.append(friend_id)
            self._all_memberships.append(
                ForumMembership(forum.id, person.id, forum.creation_date)
            )
            self.forum_members[forum.id] = members

        # interest groups, moderators Zipf-skewed towards active users
        group_count = max(4, int(len(self._all_persons) * 0.4))
        for g in range(group_count):
            moderator = self._all_persons[
                zipf_choice(rng, len(self._all_persons), 0.8)
            ]
            tag = self.tag_ids[zipf_choice(rng, len(self.tag_ids))]
            tag_name = next(
                t.name for t in self.dataset.tags if t.id == tag
            )
            creation = date_skewed_early(
                rng, moderator.creation_date, SIM_END_MS - 10 * _DAY_MS,
                bias=2.0,
            )
            forum = Forum(
                id=next_forum,
                title=f"Group for {tag_name} #{g}",
                creation_date=creation,
                moderator=moderator.id,
                tags=[tag],
            )
            next_forum += 1
            self._all_forums.append(forum)
            self._creation[forum.id] = creation
            size = power_law_int(
                rng, 4, max(8, len(self._all_persons) // 3), alpha=1.6
            )
            members = {moderator.id}
            pool = self.persons_by_interest.get(tag, self._all_persons)
            attempts = 0
            while len(members) < size and attempts < size * 5:
                attempts += 1
                pick = (
                    pool[rng.randrange(len(pool))]
                    if rng.random() < 0.7
                    else self._all_persons[
                        rng.randrange(len(self._all_persons))
                    ]
                )
                if pick.id in members:
                    continue
                members.add(pick.id)
                join = date_skewed_early(
                    rng, max(creation, pick.creation_date), SIM_END_MS, bias=1.8
                )
                self._all_memberships.append(
                    ForumMembership(forum.id, pick.id, join)
                )
            self._all_memberships.append(
                ForumMembership(forum.id, moderator.id, creation)
            )
            self.forum_members[forum.id] = sorted(members)

    # -- messages -----------------------------------------------------------------------

    def _next_message_id(self) -> int:
        self._message_id += 1
        return self._message_id

    def _gen_messages(self) -> None:
        rng = self.rng
        persons_by_id = {p.id: p for p in self._all_persons}
        tag_names = {t.id: t.name for t in self.dataset.tags}

        for forum in self._all_forums:
            members = self.forum_members[forum.id]
            post_count = power_law_int(
                rng, 1, max(4, 3 * len(members)), alpha=1.7
            )
            for _ in range(post_count):
                author = persons_by_id[members[rng.randrange(len(members))]]
                earliest = max(forum.creation_date, author.creation_date)
                created = date_skewed_early(rng, earliest, SIM_END_MS, bias=2.2)
                tag = (
                    rng.choice(forum.tags)
                    if forum.tags
                    else self.tag_ids[zipf_choice(rng, len(self.tag_ids))]
                )
                content = rng.choice(dicts.POST_SNIPPETS).format(
                    tag=tag_names[tag]
                )
                post = Post(
                    id=self._next_message_id(),
                    creation_date=created,
                    creator=author.id,
                    forum=forum.id,
                    content=content,
                    length=len(content),
                    browser_used=author.browser_used,
                    location_ip=author.location_ip,
                    language=rng.choice(author.speaks),
                    country=self.country_of_city[author.city],
                    tags=[tag],
                )
                self._all_posts.append(post)
                self._creation[post.id] = created
                self._gen_comment_tree(post, members, persons_by_id, tag_names)

    def _gen_comment_tree(
        self,
        post: Post,
        members: list[int],
        persons_by_id: dict[int, Person],
        tag_names: dict[int, str],
    ) -> None:
        rng = self.rng
        count = power_law_int(rng, 1, 40, alpha=1.9) - 1
        thread: list[tuple[int, int]] = [(post.id, post.creation_date)]
        for _ in range(count):
            author = persons_by_id[members[rng.randrange(len(members))]]
            parent_id, parent_date = thread[rng.randrange(len(thread))]
            earliest = max(parent_date, author.creation_date)
            created = date_between(
                rng, earliest, min(SIM_END_MS, earliest + 30 * _DAY_MS)
            )
            tag = post.tags[0] if post.tags and rng.random() < 0.3 else None
            snippet = rng.choice(dicts.COMMENT_SNIPPETS)
            content = (
                snippet.format(tag=tag_names[tag])
                if tag is not None and "{tag}" in snippet
                else snippet.replace("{tag}", "this")
            )
            comment = Comment(
                id=self._next_message_id(),
                creation_date=created,
                creator=author.id,
                reply_of=parent_id,
                root_post=post.id,
                content=content,
                length=len(content),
                browser_used=author.browser_used,
                location_ip=author.location_ip,
                country=self.country_of_city[author.city],
                tags=[tag] if tag is not None else [],
            )
            self._all_comments.append(comment)
            self._creation[comment.id] = created
            thread.append((comment.id, created))

    # -- likes ----------------------------------------------------------------------------

    def _gen_likes(self) -> None:
        rng = self.rng
        for messages, forum_of in (
            (self._all_posts, lambda m: m.forum),
            (self._all_comments, lambda m: m.root_post),
        ):
            for message in messages:
                count = power_law_int(rng, 1, 30, alpha=1.75) - 1
                if count == 0:
                    continue
                if isinstance(message, Post):
                    pool = self.forum_members[message.forum]
                else:
                    pool = sorted(self.adjacency.get(message.creator, ()))
                if not pool:
                    continue
                likers = set()
                for _ in range(count):
                    liker = pool[rng.randrange(len(pool))]
                    if liker in likers or liker == message.creator:
                        continue
                    likers.add(liker)
                    liker_creation = self._creation.get(
                        liker, SIM_START_MS
                    )
                    earliest = max(message.creation_date, liker_creation)
                    created = date_between(
                        rng, earliest, min(SIM_END_MS, earliest + 7 * _DAY_MS)
                    )
                    self._all_likes.append(Like(liker, message.id, created))

    # -- snapshot / update split --------------------------------------------------------------

    def _split(self) -> None:
        data = self.dataset
        cutoff = self.cutoff_ms
        updates: list[UpdateEvent] = []
        persons_by_id = {p.id: p for p in self._all_persons}

        for person in self._all_persons:
            if person.creation_date < cutoff:
                data.persons.append(person)
            else:
                updates.append(
                    UpdateEvent(
                        UpdateKind.ADD_PERSON,
                        person.creation_date,
                        SIM_START_MS,
                        person,
                    )
                )
        for knows in self._all_knows:
            dep = max(
                persons_by_id[knows.person1].creation_date,
                persons_by_id[knows.person2].creation_date,
            )
            if knows.creation_date < cutoff:
                data.knows.append(knows)
            else:
                updates.append(
                    UpdateEvent(
                        UpdateKind.ADD_FRIENDSHIP, knows.creation_date, dep, knows
                    )
                )
        for forum in self._all_forums:
            dep = persons_by_id[forum.moderator].creation_date
            if forum.creation_date < cutoff:
                data.forums.append(forum)
            else:
                updates.append(
                    UpdateEvent(
                        UpdateKind.ADD_FORUM, forum.creation_date, dep, forum
                    )
                )
        for membership in self._all_memberships:
            dep = max(
                self._creation[membership.forum],
                persons_by_id[membership.person].creation_date,
            )
            if membership.join_date < cutoff:
                data.memberships.append(membership)
            else:
                updates.append(
                    UpdateEvent(
                        UpdateKind.ADD_FORUM_MEMBERSHIP,
                        membership.join_date,
                        dep,
                        membership,
                    )
                )
        for post in self._all_posts:
            dep = max(
                self._creation[post.forum],
                persons_by_id[post.creator].creation_date,
            )
            if post.creation_date < cutoff:
                data.posts.append(post)
            else:
                updates.append(
                    UpdateEvent(
                        UpdateKind.ADD_POST, post.creation_date, dep, post
                    )
                )
        post_ids = {p.id for p in self._all_posts}
        for comment in self._all_comments:
            dep = max(
                self._creation[comment.reply_of],
                persons_by_id[comment.creator].creation_date,
            )
            if comment.creation_date < cutoff:
                data.comments.append(comment)
            else:
                updates.append(
                    UpdateEvent(
                        UpdateKind.ADD_COMMENT,
                        comment.creation_date,
                        dep,
                        comment,
                    )
                )
        for like in self._all_likes:
            dep = max(
                self._creation[like.message],
                persons_by_id[like.person].creation_date,
            )
            kind = (
                UpdateKind.ADD_POST_LIKE
                if like.message in post_ids
                else UpdateKind.ADD_COMMENT_LIKE
            )
            if like.creation_date < cutoff:
                data.likes.append(like)
            else:
                updates.append(
                    UpdateEvent(kind, like.creation_date, dep, like)
                )
        updates.sort()
        data.updates = updates
