"""CSV serialization of a generated dataset (LDBC datagen output format).

Used both to materialize datasets on disk and to measure the "Raw files"
column of Table 1 (the serialized footprint before any system loads it).
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable
from pathlib import Path

from repro.snb.datagen import SnbDataset


def _person_rows(data: SnbDataset) -> Iterable[list]:
    for p in data.persons:
        yield [
            p.id, p.first_name, p.last_name, p.gender, p.birthday,
            p.creation_date, p.location_ip, p.browser_used, p.city,
            ";".join(p.speaks), ";".join(p.emails),
        ]


def _tables(data: SnbDataset) -> dict[str, tuple[list[str], Iterable[list]]]:
    """table name -> (header, row iterable)."""
    return {
        "place": (
            ["id", "name", "type", "isPartOf"],
            ([p.id, p.name, p.kind, p.part_of] for p in data.places),
        ),
        "tagclass": (
            ["id", "name", "isSubclassOf"],
            ([t.id, t.name, t.subclass_of] for t in data.tag_classes),
        ),
        "tag": (
            ["id", "name", "hasType"],
            ([t.id, t.name, t.tag_class] for t in data.tags),
        ),
        "organisation": (
            ["id", "name", "type", "place"],
            ([o.id, o.name, o.kind, o.place] for o in data.organisations),
        ),
        "person": (
            [
                "id", "firstName", "lastName", "gender", "birthday",
                "creationDate", "locationIP", "browserUsed", "city",
                "speaks", "email",
            ],
            _person_rows(data),
        ),
        "person_studyAt_organisation": (
            ["personId", "organisationId", "classYear"],
            (
                [p.id, p.university, p.class_year]
                for p in data.persons
                if p.university is not None
            ),
        ),
        "person_workAt_organisation": (
            ["personId", "organisationId", "workFrom"],
            (
                [p.id, p.company, p.work_from]
                for p in data.persons
                if p.company is not None
            ),
        ),
        "person_hasInterest_tag": (
            ["personId", "tagId"],
            ([p.id, t] for p in data.persons for t in p.interests),
        ),
        "person_knows_person": (
            ["person1Id", "person2Id", "creationDate"],
            ([k.person1, k.person2, k.creation_date] for k in data.knows),
        ),
        "forum": (
            ["id", "title", "creationDate", "moderator"],
            (
                [f.id, f.title, f.creation_date, f.moderator]
                for f in data.forums
            ),
        ),
        "forum_hasTag_tag": (
            ["forumId", "tagId"],
            ([f.id, t] for f in data.forums for t in f.tags),
        ),
        "forum_hasMember_person": (
            ["forumId", "personId", "joinDate"],
            (
                [m.forum, m.person, m.join_date]
                for m in data.memberships
            ),
        ),
        "post": (
            [
                "id", "creationDate", "creator", "forum", "content",
                "length", "browserUsed", "locationIP", "language", "country",
            ],
            (
                [
                    p.id, p.creation_date, p.creator, p.forum, p.content,
                    p.length, p.browser_used, p.location_ip, p.language,
                    p.country,
                ]
                for p in data.posts
            ),
        ),
        "post_hasTag_tag": (
            ["postId", "tagId"],
            ([p.id, t] for p in data.posts for t in p.tags),
        ),
        "comment": (
            [
                "id", "creationDate", "creator", "replyOf", "rootPost",
                "content", "length", "browserUsed", "locationIP", "country",
            ],
            (
                [
                    c.id, c.creation_date, c.creator, c.reply_of,
                    c.root_post, c.content, c.length, c.browser_used,
                    c.location_ip, c.country,
                ]
                for c in data.comments
            ),
        ),
        "comment_hasTag_tag": (
            ["commentId", "tagId"],
            ([c.id, t] for c in data.comments for t in c.tags),
        ),
        "person_likes_message": (
            ["personId", "messageId", "creationDate"],
            ([l.person, l.message, l.creation_date] for l in data.likes),
        ),
    }


def serialize_to_dir(data: SnbDataset, directory: str | Path) -> dict[str, int]:
    """Write one CSV per table; returns per-file byte sizes."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sizes: dict[str, int] = {}
    for name, (header, rows) in _tables(data).items():
        path = directory / f"{name}.csv"
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh, delimiter="|")
            writer.writerow(header)
            writer.writerows(rows)
        sizes[name] = path.stat().st_size
    return sizes


def raw_size_bytes(data: SnbDataset) -> int:
    """Total serialized size without touching disk."""
    total = 0
    for _name, (header, rows) in _tables(data).items():
        sink = io.StringIO()
        writer = csv.writer(sink, delimiter="|")
        writer.writerow(header)
        writer.writerows(rows)
        total += len(sink.getvalue().encode("utf-8"))
    return total
