"""SNB entity and update-event records.

Entities are plain dataclasses; ids are globally unique 64-bit ints with a
per-type range (high decimal digit encodes the type) so mixed containers
stay unambiguous.  Posts and comments share the *message* id space, as in
LDBC SNB.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: id range bases per entity type
PERSON_ID_BASE = 1_000_000_000
FORUM_ID_BASE = 2_000_000_000
MESSAGE_ID_BASE = 3_000_000_000
TAG_ID_BASE = 4_000_000_000
TAGCLASS_ID_BASE = 5_000_000_000
PLACE_ID_BASE = 6_000_000_000
ORGANISATION_ID_BASE = 7_000_000_000


@dataclass
class Place:
    id: int
    name: str
    kind: str  # continent | country | city
    part_of: int | None  # parent place id


@dataclass
class TagClass:
    id: int
    name: str
    subclass_of: int | None


@dataclass
class Tag:
    id: int
    name: str
    tag_class: int


@dataclass
class Organisation:
    id: int
    name: str
    kind: str  # university | company
    place: int  # city id for universities, country id for companies


@dataclass
class Person:
    id: int
    first_name: str
    last_name: str
    gender: str
    birthday: int  # epoch ms
    creation_date: int  # epoch ms
    location_ip: str
    browser_used: str
    city: int  # place id
    speaks: list[str] = field(default_factory=list)
    emails: list[str] = field(default_factory=list)
    interests: list[int] = field(default_factory=list)  # tag ids
    university: int | None = None
    class_year: int | None = None
    company: int | None = None
    work_from: int | None = None


@dataclass
class Knows:
    person1: int
    person2: int
    creation_date: int


@dataclass
class Forum:
    id: int
    title: str
    creation_date: int
    moderator: int  # person id
    tags: list[int] = field(default_factory=list)


@dataclass
class ForumMembership:
    forum: int
    person: int
    join_date: int


@dataclass
class Post:
    id: int
    creation_date: int
    creator: int  # person id
    forum: int
    content: str
    length: int
    browser_used: str
    location_ip: str
    language: str
    country: int  # place id
    tags: list[int] = field(default_factory=list)


@dataclass
class Comment:
    id: int
    creation_date: int
    creator: int
    reply_of: int  # message id (post or comment)
    root_post: int
    content: str
    length: int
    browser_used: str
    location_ip: str
    country: int
    tags: list[int] = field(default_factory=list)


@dataclass
class Like:
    person: int
    message: int  # post or comment id
    creation_date: int


class UpdateKind(enum.Enum):
    """The eight LDBC SNB Interactive insert operations."""

    ADD_PERSON = "INS1"
    ADD_POST_LIKE = "INS2"
    ADD_COMMENT_LIKE = "INS3"
    ADD_FORUM = "INS4"
    ADD_FORUM_MEMBERSHIP = "INS5"
    ADD_POST = "INS6"
    ADD_COMMENT = "INS7"
    ADD_FRIENDSHIP = "INS8"


@dataclass
class UpdateEvent:
    """One update-stream entry.

    ``dependency_ms`` is the latest creation time among the entities this
    event references — the driver must not execute the event before every
    dependency has been executed (LDBC dependency-tracking scheduling).
    """

    kind: UpdateKind
    creation_ms: int
    dependency_ms: int
    payload: object  # the entity / edge dataclass above

    def __lt__(self, other: "UpdateEvent") -> bool:
        return self.creation_ms < other.creation_ms
