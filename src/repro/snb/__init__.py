"""LDBC Social Network Benchmark datagen analogue.

Generates a synthetic social network with the SNB schema (persons, forums,
posts, comments, tags, places, organisations and their edges), power-law
degree distributions, correlated friendships, and a time-ordered update
stream with dependency timestamps — the two artifacts the real LDBC datagen
produces (an initial snapshot plus update streams).
"""

from repro.snb.datagen import GeneratorConfig, SnbDataset, generate
from repro.snb.schema import (
    Comment,
    Forum,
    Organisation,
    Person,
    Place,
    Post,
    Tag,
    TagClass,
    UpdateEvent,
    UpdateKind,
)

__all__ = [
    "GeneratorConfig",
    "SnbDataset",
    "generate",
    "Person",
    "Forum",
    "Post",
    "Comment",
    "Tag",
    "TagClass",
    "Place",
    "Organisation",
    "UpdateEvent",
    "UpdateKind",
]
