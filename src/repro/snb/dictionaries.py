"""Static dictionaries for the datagen: names, places, tags, organisations.

The real LDBC datagen draws from DBpedia dictionaries; these are compact
synthetic equivalents with the same *roles* (correlated person attributes,
Zipf-popular tags, a place hierarchy).
"""

from __future__ import annotations

FIRST_NAMES = [
    "Liam", "Olivia", "Noah", "Emma", "Oliver", "Ava", "Elijah", "Sophia",
    "Mateo", "Isabella", "Lucas", "Mia", "Levi", "Charlotte", "Ezra",
    "Amelia", "Asher", "Harper", "Leo", "Evelyn", "James", "Luna", "Luca",
    "Camila", "Hudson", "Gianna", "Ethan", "Elizabeth", "Muhammad", "Eleanor",
    "Maverick", "Ella", "Kai", "Abigail", "Aiden", "Sofia", "Jack", "Avery",
    "Theo", "Scarlett", "Wei", "Mei", "Hiroshi", "Yuki", "Ravi", "Priya",
    "Ahmed", "Fatima", "Carlos", "Lucia", "Ivan", "Anya", "Pierre", "Amelie",
    "Hans", "Greta", "Olaf", "Ingrid", "Tariq", "Zara",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Chen", "Wang", "Singh", "Kumar", "Tanaka", "Sato", "Kim", "Park",
    "Nguyen", "Tran", "Ali", "Hassan", "Ibrahim", "Silva", "Santos",
    "Petrov", "Ivanov", "Dubois", "Moreau", "Muller", "Schmidt", "Larsen",
    "Andersen",
]

GENDERS = ["male", "female"]

BROWSERS = ["Firefox", "Chrome", "Internet Explorer", "Safari", "Opera"]

LANGUAGES = ["en", "de", "fr", "es", "pt", "zh", "hi", "ar", "ru", "ja"]

#: (continent, country, [cities]) — the isPartOf hierarchy
PLACES = [
    ("Europe", "Germany", ["Berlin", "Munich", "Hamburg"]),
    ("Europe", "France", ["Paris", "Lyon", "Marseille"]),
    ("Europe", "United_Kingdom", ["London", "Manchester", "Leeds"]),
    ("Europe", "Spain", ["Madrid", "Barcelona", "Valencia"]),
    ("Europe", "Italy", ["Rome", "Milan", "Naples"]),
    ("Europe", "Netherlands", ["Amsterdam", "Rotterdam", "Utrecht"]),
    ("Europe", "Poland", ["Warsaw", "Krakow", "Gdansk"]),
    ("Europe", "Russia", ["Moscow", "Saint_Petersburg", "Kazan"]),
    ("Asia", "China", ["Beijing", "Shanghai", "Shenzhen"]),
    ("Asia", "India", ["Mumbai", "Delhi", "Bangalore"]),
    ("Asia", "Japan", ["Tokyo", "Osaka", "Kyoto"]),
    ("Asia", "South_Korea", ["Seoul", "Busan", "Incheon"]),
    ("Asia", "Indonesia", ["Jakarta", "Surabaya", "Bandung"]),
    ("Asia", "Vietnam", ["Hanoi", "Ho_Chi_Minh_City", "Da_Nang"]),
    ("America", "United_States", ["New_York", "Los_Angeles", "Chicago"]),
    ("America", "Canada", ["Toronto", "Montreal", "Waterloo"]),
    ("America", "Brazil", ["Sao_Paulo", "Rio_de_Janeiro", "Brasilia"]),
    ("America", "Mexico", ["Mexico_City", "Guadalajara", "Monterrey"]),
    ("America", "Argentina", ["Buenos_Aires", "Cordoba", "Rosario"]),
    ("Africa", "Egypt", ["Cairo", "Alexandria", "Giza"]),
    ("Africa", "Nigeria", ["Lagos", "Abuja", "Kano"]),
    ("Africa", "South_Africa", ["Johannesburg", "Cape_Town", "Durban"]),
    ("Oceania", "Australia", ["Sydney", "Melbourne", "Brisbane"]),
    ("Oceania", "New_Zealand", ["Auckland", "Wellington", "Christchurch"]),
]

#: tag class hierarchy: (class, parent or None)
TAG_CLASSES = [
    ("Thing", None),
    ("Agent", "Thing"),
    ("Person", "Agent"),
    ("Organisation", "Agent"),
    ("Artist", "Person"),
    ("MusicalArtist", "Artist"),
    ("Writer", "Artist"),
    ("Politician", "Person"),
    ("Athlete", "Person"),
    ("Work", "Thing"),
    ("Album", "Work"),
    ("Film", "Work"),
    ("Book", "Work"),
    ("Event", "Thing"),
    ("SportsEvent", "Event"),
    ("Place", "Thing"),
    ("Country", "Place"),
    ("City", "Place"),
    ("Species", "Thing"),
    ("Technology", "Thing"),
]

#: (tag name, tag class) — popularity follows Zipf over list order
TAGS = [
    ("The_Beatles", "MusicalArtist"), ("Elvis_Presley", "MusicalArtist"),
    ("David_Bowie", "MusicalArtist"), ("Madonna", "MusicalArtist"),
    ("Queen", "MusicalArtist"), ("Bob_Dylan", "MusicalArtist"),
    ("Michael_Jackson", "MusicalArtist"), ("Pink_Floyd", "MusicalArtist"),
    ("Leo_Tolstoy", "Writer"), ("Jane_Austen", "Writer"),
    ("Mark_Twain", "Writer"), ("Franz_Kafka", "Writer"),
    ("Haruki_Murakami", "Writer"), ("George_Orwell", "Writer"),
    ("Napoleon", "Politician"), ("Winston_Churchill", "Politician"),
    ("Abraham_Lincoln", "Politician"), ("Mahatma_Gandhi", "Politician"),
    ("Nelson_Mandela", "Politician"), ("Julius_Caesar", "Politician"),
    ("Pele", "Athlete"), ("Muhammad_Ali", "Athlete"),
    ("Serena_Williams", "Athlete"), ("Usain_Bolt", "Athlete"),
    ("Roger_Federer", "Athlete"), ("Diego_Maradona", "Athlete"),
    ("Abbey_Road", "Album"), ("Thriller", "Album"),
    ("Dark_Side_of_the_Moon", "Album"), ("Casablanca", "Film"),
    ("The_Godfather", "Film"), ("Citizen_Kane", "Film"),
    ("Metropolis", "Film"), ("War_and_Peace", "Book"),
    ("Don_Quixote", "Book"), ("Moby_Dick", "Book"),
    ("Hamlet", "Book"), ("The_Odyssey", "Book"),
    ("Olympic_Games", "SportsEvent"), ("World_Cup", "SportsEvent"),
    ("Tour_de_France", "SportsEvent"), ("Wimbledon", "SportsEvent"),
    ("Machine_Learning", "Technology"), ("Databases", "Technology"),
    ("Distributed_Systems", "Technology"), ("Compilers", "Technology"),
    ("Operating_Systems", "Technology"), ("Graph_Theory", "Technology"),
    ("Quantum_Computing", "Technology"), ("Cryptography", "Technology"),
    ("Giant_Panda", "Species"), ("Blue_Whale", "Species"),
    ("Monarch_Butterfly", "Species"), ("Snow_Leopard", "Species"),
    ("Honey_Bee", "Species"), ("Emperor_Penguin", "Species"),
]

UNIVERSITY_NAMES = [
    "University_of_{city}", "{city}_Institute_of_Technology",
]

COMPANY_SUFFIXES = [
    "Airlines", "Software", "Industries", "Logistics", "Energy", "Motors",
    "Foods", "Media", "Bank", "Telecom",
]

FORUM_TITLE_PATTERNS = [
    "Wall of {name}",
    "Group for {tag} in {city}",
    "Album about {tag}",
]

POST_SNIPPETS = [
    "About {tag}: photos from my trip.",
    "About {tag}: thoughts after reading a lot about it.",
    "About {tag}: can anyone recommend a good introduction?",
    "About {tag}: this changed how I think.",
    "About {tag}: fine, but overrated in my opinion.",
]

COMMENT_SNIPPETS = [
    "thanks", "great", "ok", "thx", "good", "cool", "roflol", "no",
    "I see", "right", "duh", "fine", "LOL", "About {tag}: totally agree.",
    "About {tag}: not so sure about that.", "maybe",
]
