"""TitanDB: a TinkerPop graph layer over pluggable KV storage backends.

Two configurations from the paper:

* ``titan_cassandra()`` — Titan-C: LSM-tree backend run as a separate
  process (every KV op pays ``backend_rtt``), no transactional isolation,
  so uniqueness constraints need Titan's explicit distributed locking
  (``lock_rtt`` per locked write).  Writes scale with concurrency;
  point reads pay LSM read amplification.
* ``titan_berkeley()``  — Titan-B: embedded B-tree backend, transactional
  but with writer serialization (the mechanism behind its collapse under
  concurrent load in the paper).
"""

from repro.titan.graph import TitanProvider, titan_berkeley, titan_cassandra

__all__ = ["TitanProvider", "titan_cassandra", "titan_berkeley"]
