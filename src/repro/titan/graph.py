"""The Titan provider: adjacency encoded in ordered KV rows.

Data model (Titan's vertex-centric layout):

* ``v:<vid>``                                    -> vertex label + props
* ``e:<vid>:<label>:<dir>:<other>:<eid>``        -> edge props (stored
  from *both* endpoints, as Titan duplicates each edge)
* ``i:<label>:<key>:<value>:<vid>``              -> composite index entry

Ids are zero-padded so byte order equals numeric order; adjacency entries
sort by edge label first (Titan's vertex-centric sort order), so a
labelled neighbourhood — in either or both directions — is a single
contiguous range scan: one wide-row slice on Cassandra, one cursor range
on BerkeleyDB.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from typing import Any

from repro.sanitizer import runtime
from repro.simclock.ledger import charge
from repro.storage.bdb import BDBStore
from repro.storage.lsm import LSMTree
from repro.storage.mvcc import VersionStore
from repro.tinkerpop.structure import GraphProvider

_DIR = {"out": "o", "in": "i"}


def _pad(value: int) -> str:
    return f"{value:020d}"


def _encode_value(value: Any) -> str:
    """Index-key encoding that keeps one type per property orderly."""
    if isinstance(value, int) and not isinstance(value, bool):
        return f"n{value:020d}"
    return f"s{value}"


class TitanProvider(GraphProvider):
    def __init__(
        self,
        backend: LSMTree | BDBStore,
        *,
        name: str = "titan",
        remote_backend: bool = False,
        requires_locking: bool = False,
    ) -> None:
        self.backend = backend
        self.name = name
        self.remote_backend = remote_backend
        self.requires_locking = requires_locking
        self._indexed: set[tuple[str, str]] = set()
        self._next_eid = 0
        # version metadata keyed ("v", vid) / ("e", eid); no deletes in
        # the SPI, so only stamps and property-update chains occur
        self.mvcc = VersionStore(f"{name}-mvcc")
        # Titan's transaction-level vertex cache: repeated property access
        # within a traversal hits this instead of the storage backend
        self._vertex_cache: dict[Any, dict] = {}

    # -- KV plumbing ------------------------------------------------------------

    def _get(self, key: str) -> bytes | None:
        if self.remote_backend:
            charge("backend_rtt")
        return self.backend.get(key.encode())

    def _put(self, key: str, value: bytes) -> None:
        if self.remote_backend:
            charge("backend_rtt")
        self.backend.put(key.encode(), value)

    def _delete(self, key: str) -> None:
        if self.remote_backend:
            charge("backend_rtt")
        self.backend.delete(key.encode())

    def _scan(self, prefix: str) -> Iterator[tuple[str, bytes]]:
        if self.remote_backend:
            charge("backend_rtt")
        lo = prefix.encode()
        hi = prefix.encode() + b"\xff"
        for key, value in self.backend.range_scan(lo, hi):
            yield key.decode(), value

    # -- schema ---------------------------------------------------------------------

    def create_index(self, label: str, key: str) -> None:
        self._indexed.add((label, key))

    def has_lookup_index(self, label: str, key: str) -> bool:
        return (label, key) in self._indexed

    # -- SPI: writes -------------------------------------------------------------------

    def create_vertex(self, label: str, props: dict[str, Any]) -> Any:
        vid = props.get("id")
        if vid is None:
            raise ValueError("Titan vertices need an 'id' property")
        if self.requires_locking and (label, "id") in self._indexed:
            # distributed lock claim + verify round trips on Cassandra
            charge("lock_rtt")
        self._put(
            f"v:{_pad(vid)}",
            json.dumps({"label": label, "props": props}).encode(),
        )
        self.mvcc.stamp(("v", vid))
        for ilabel, ikey in self._indexed:
            if ilabel == label and props.get(ikey) is not None:
                self._put(
                    f"i:{label}:{ikey}:{_encode_value(props[ikey])}:"
                    f"{_pad(vid)}",
                    b"",
                )
        if runtime.TRACE is not None:
            runtime.TRACE.write(("titan-vertex", vid))
        return vid

    def create_edge(
        self, label: str, out_vid: Any, in_vid: Any, props: dict[str, Any]
    ) -> Any:
        self._next_eid += 1
        eid = self._next_eid
        payload = json.dumps(props).encode()
        self._put(
            f"e:{_pad(out_vid)}:{label}:o:{_pad(in_vid)}:{_pad(eid)}", payload
        )
        self._put(
            f"e:{_pad(in_vid)}:{label}:i:{_pad(out_vid)}:{_pad(eid)}", payload
        )
        self.mvcc.stamp(("e", eid))
        if runtime.TRACE is not None:
            runtime.TRACE.write(("titan-adj", out_vid))
            runtime.TRACE.write(("titan-adj", in_vid))
        return (eid, label, out_vid, in_vid)

    def set_vertex_prop(self, vid: Any, key: str, value: Any) -> None:
        raw = self._get(f"v:{_pad(vid)}")
        if raw is None:
            raise KeyError(f"no vertex {vid}")
        record = json.loads(raw)
        self.mvcc.record_update(("v", vid), json.loads(raw))
        label = record["label"]
        old = record["props"].get(key)
        record["props"][key] = value
        self._vertex_cache.pop(vid, None)
        self._put(f"v:{_pad(vid)}", json.dumps(record).encode())
        if (label, key) in self._indexed and old != value:
            # re-file the composite-index entry under the new value
            if old is not None:
                self._delete(
                    f"i:{label}:{key}:{_encode_value(old)}:{_pad(vid)}"
                )
            if value is not None:
                self._put(
                    f"i:{label}:{key}:{_encode_value(value)}:{_pad(vid)}",
                    b"",
                )
        if runtime.TRACE is not None:
            runtime.TRACE.write(("titan-vertex", vid))

    # -- SPI: reads ---------------------------------------------------------------------

    def vertices(self, label: str | None = None) -> Iterator[Any]:
        for key, value in self._scan("v:"):
            charge("value_cpu")
            record = json.loads(value)
            vid = record["props"]["id"]
            if (
                label is None or record["label"] == label
            ) and self.mvcc.visible(("v", vid)):
                yield vid

    def _vertex_record(self, vid: Any) -> dict:
        if runtime.TRACE is not None:
            runtime.TRACE.read(("titan-vertex", vid))
        if self.mvcc.stale(("v", vid)):
            # snapshot older than the latest write: serve the covering
            # chain version, bypassing the transaction-level cache
            charge("value_cpu")
            return self.mvcc.read(("v", vid), None)
        cached = self._vertex_cache.get(vid)
        if cached is not None:
            charge("value_cpu")
            return cached
        raw = self._get(f"v:{_pad(vid)}")
        if raw is None:
            raise KeyError(f"no vertex {vid}")
        record = json.loads(raw)
        self._vertex_cache[vid] = record
        return record

    def vertex_label(self, vid: Any) -> str:
        return self._vertex_record(vid)["label"]

    def vertex_props(self, vid: Any) -> dict[str, Any]:
        return self._vertex_record(vid)["props"]

    def edge_props(self, eid: Any) -> dict[str, Any]:
        eid_num, label, out_vid, in_vid = eid
        raw = self._get(
            f"e:{_pad(out_vid)}:{label}:o:{_pad(in_vid)}:{_pad(eid_num)}"
        )
        if raw is None:
            raise KeyError(f"no edge {eid}")
        return json.loads(raw)

    def edge_label(self, eid: Any) -> str:
        return eid[1]

    def edge_endpoints(self, eid: Any) -> tuple[Any, Any]:
        _eid, _label, out_vid, in_vid = eid
        return out_vid, in_vid

    def adjacent(
        self, vid: Any, direction: str, label: str | None
    ) -> Iterator[tuple[Any, Any]]:
        # with a label, any direction (incl. both) is one contiguous scan;
        # without one, the whole adjacency row is scanned and filtered
        if label is not None:
            prefixes = [f"e:{_pad(vid)}:{label}:"]
            if direction in _DIR:
                prefixes = [f"e:{_pad(vid)}:{label}:{_DIR[direction]}:"]
        else:
            prefixes = [f"e:{_pad(vid)}:"]
        if runtime.TRACE is not None:
            runtime.TRACE.read(("titan-adj", vid))
        wanted = _DIR.get(direction)
        for prefix in prefixes:
            for key, _value in self._scan(prefix):
                charge("value_cpu")
                parts = key.split(":")
                elabel = parts[2]
                dir_code = parts[3]
                other = int(parts[4])
                eid_num = int(parts[5])
                if wanted is not None and dir_code != wanted:
                    continue
                if not self.mvcc.visible(("e", eid_num)):
                    continue
                if dir_code == "o":
                    eid = (eid_num, elabel, vid, other)
                else:
                    eid = (eid_num, elabel, other, vid)
                yield eid, other

    def lookup(self, label: str, key: str, value: Any) -> list[Any]:
        """Vertex ids via the composite index, snapshot-corrected.

        Index rows are unversioned: a ``set_vertex_prop`` after the
        current snapshot began re-filed the ``i:`` entry, so vertices
        stamped after the snapshot (``mvcc.stale_keys()``) are
        re-checked against their covering chain version — every such
        version walk bypasses the current index row entirely.
        """
        if (label, key) not in self._indexed:
            raise KeyError(f"no Titan index on {label}.{key}")
        prefix = f"i:{label}:{key}:{_encode_value(value)}:"
        vids = [
            int(entry_key.rsplit(":", 1)[1])
            for entry_key, _ in self._scan(prefix)
        ]
        hits = [vid for vid in vids if self.mvcc.visible(("v", vid))]
        stale = [k for k in self.mvcc.stale_keys() if k[0] == "v"]
        if not stale:
            return hits
        kept = []
        for vid in hits:
            if self.mvcc.stale(("v", vid)):
                # chain-covered read: current value is never consulted
                record = self.mvcc.read(("v", vid), None)
                if record["props"].get(key) != value:
                    continue
            kept.append(vid)
        seen = set(kept)
        for _, vid in stale:
            if vid in seen or not self.mvcc.visible(("v", vid)):
                continue
            record = self.mvcc.read(("v", vid), None)
            if (
                record["label"] == label
                and record["props"].get(key) == value
            ):
                kept.append(vid)
        return kept

    # -- stats -------------------------------------------------------------------------------

    def size_bytes(self) -> int:
        return self.backend.size_bytes()

    @property
    def serializes_writers(self) -> bool:
        return getattr(self.backend, "serializes_writers", False)


def titan_cassandra() -> TitanProvider:
    """Titan 1.1 with the Cassandra storage backend (separate process)."""
    return TitanProvider(
        LSMTree(memtable_limit=16384, max_sstables=6, name="cassandra"),
        name="titan-cassandra",
        remote_backend=True,
        requires_locking=True,
    )


def titan_berkeley() -> TitanProvider:
    """Titan 1.1 with embedded BerkeleyDB (transactional, single-writer)."""
    return TitanProvider(
        BDBStore(name="berkeleydb"),
        name="titan-berkeley",
        remote_backend=False,
        requires_locking=False,
    )
