"""The real-time interactive workload runner (Figure 3).

Architecture (the paper's Figure 1): update operations are produced into
a Kafka topic; a single dedicated writer consumes them and executes update
transactions against the SUT while N concurrent readers run the reduced
query mix.  Everything runs on the discrete-event simulator; operation
service times come from the cost ledgers.

Per-system contention models (each the mechanism the paper identifies):

* **Gremlin systems** — every request needs a Gremlin Server worker
  (bounded pool).  When the request queue exceeds the limit, the server
  crashes and all subsequent requests fail (Section 4.4).
* **Titan-B** — its embedded BerkeleyDB serializes *all* operations
  through a store latch; under 32 readers + writer it collapses.
* **Neo4j** — a background checkpointer periodically stalls the write
  path in proportion to the dirty volume ("sudden drops due to
  checkpointing"); reads continue.
* **SQL / SPARQL systems** — writers pay their measured WAL/index/column
  maintenance costs; no extra serialization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.benchmark import WorkloadParams
from repro.core.connectors.base import Connector, OperationFailed
from repro.core.connectors.gremlin import GremlinConnector
from repro.core.metrics import LatencyRecorder, ThroughputWindow
from repro.driver.workload import QueryMix
from repro.kafka import Broker, Consumer, Producer
from repro.sanitizer import runtime
from repro.simclock import (
    Acquire,
    CostModel,
    Release,
    Resource,
    Simulator,
    Timeout,
    meter,
)
from repro.snb.datagen import SnbDataset

UPDATES_TOPIC = "snb-updates"


@dataclass
class InteractiveConfig:
    readers: int = 32
    duration_ms: float = 2_000.0  # simulated
    window_ms: float = 100.0
    cores: int = 32
    seed: int = 7
    mix: list[tuple[str, int]] | None = None
    #: ``snapshot`` (MVCC: readers never take the read/write latch) or
    #: ``read-committed`` (writers exclude readers while applying)
    isolation_level: str = "snapshot"
    checkpoint_interval_ms: float = 500.0
    checkpoint_stall_us_per_record: float = 400.0
    max_update_events: int | None = None
    #: events applied per group-committed write transaction; 1 keeps the
    #: paper's per-event writer, >1 drains each poll through
    #: :meth:`Connector.apply_update_batch` (one WAL flush per batch)
    write_batch_size: int = 1


@dataclass
class InteractiveResult:
    system: str
    readers: int
    duration_ms: float
    read_windows: ThroughputWindow
    write_windows: ThroughputWindow
    read_latency: LatencyRecorder
    write_latency: LatencyRecorder
    read_failures: int = 0
    server_crashed: bool = False
    updates_applied: int = 0
    #: time readers spent blocked on the read/write latch; zero by
    #: construction under snapshot isolation (readers never take it)
    reader_lock_waits: int = 0
    reader_lock_wait_us: float = 0.0

    @property
    def read_throughput(self) -> float:
        return self.read_windows.mean_rate(self.duration_ms)

    @property
    def write_throughput(self) -> float:
        return self.write_windows.mean_rate(self.duration_ms)


class InteractiveWorkloadRunner:
    """Runs Section 4.3's workload against one loaded connector."""

    def __init__(
        self,
        connector: Connector,
        dataset: SnbDataset,
        config: InteractiveConfig | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.connector = connector
        self.dataset = dataset
        self.config = config or InteractiveConfig()
        self.model = cost_model or CostModel()

    # -- the experiment ------------------------------------------------------------

    def run(self) -> InteractiveResult:
        config = self.config
        connector = self.connector
        sim = Simulator()
        result = InteractiveResult(
            system=connector.key,
            readers=config.readers,
            duration_ms=config.duration_ms,
            read_windows=ThroughputWindow(config.window_ms),
            write_windows=ThroughputWindow(config.window_ms),
            read_latency=LatencyRecorder("read"),
            write_latency=LatencyRecorder("write"),
        )

        # Kafka: pre-produce the dependency-ordered update stream
        broker = Broker()
        broker.create_topic(UPDATES_TOPIC, partitions=1)
        producer = Producer(broker, batch_size=64)
        events = self.dataset.updates
        if config.max_update_events is not None:
            events = events[: config.max_update_events]
        for event in events:
            producer.send(UPDATES_TOPIC, None, event, event.creation_ms)
        producer.flush()
        consumer = Consumer(broker, "sut-writer", UPDATES_TOPIC)

        # contention resources
        cpu = Resource(capacity=config.cores, name="cpu")
        is_gremlin = isinstance(connector, GremlinConnector)
        server_pool = None
        if is_gremlin:
            server_pool = Resource(
                capacity=connector.server.worker_pool_size,
                name="gremlin-workers",
            )
        store_latch = None
        if "titan-b-writer" in connector.write_resources:
            store_latch = Resource(capacity=1, name="bdb-latch")
        checkpoint_lock = Resource(capacity=1, name="wal-lock")
        # read-committed: writers exclude readers for the duration of
        # each update transaction (the writer drains every unit of the
        # latch).  Snapshot isolation removes the latch entirely —
        # readers run against immutable versions and never wait.
        connector.set_isolation_level(config.isolation_level)
        rw_latch = None
        if config.isolation_level == "read-committed":
            rw_latch = Resource(
                capacity=max(1, config.readers), name="rw-latch"
            )

        params = WorkloadParams.curate(self.dataset, seed=config.seed)
        mix = QueryMix(params, mix=config.mix, seed=config.seed)
        deadline_us = config.duration_ms * 1000.0

        def execute(op, who: str = "writer") -> float | None:
            """Run the op for real; returns its simulated cost in us."""
            try:
                if runtime.TRACE is None:
                    with meter() as ledger:
                        op()
                else:
                    with runtime.worker(who), meter() as ledger:
                        op()
            except OperationFailed:
                return None
            return self.model.cost_us(ledger.counters)

        def reader(reader_id: int):
            while sim.now_us < deadline_us:
                read_op = mix.draw()
                if is_gremlin:
                    if (
                        server_pool.queue_depth
                        >= connector.server.queue_limit
                    ):
                        connector.server.crash()
                        result.server_crashed = True
                    yield Acquire(server_pool)
                if store_latch is not None:
                    yield Acquire(store_latch)
                if rw_latch is not None:
                    queued_us = sim.now_us
                    yield Acquire(rw_latch)
                    waited_us = sim.now_us - queued_us
                    if waited_us > 0.0:
                        result.reader_lock_waits += 1
                        result.reader_lock_wait_us += waited_us
                yield Acquire(cpu)
                cost_us = execute(
                    lambda: read_op.execute(connector),
                    who=f"reader-{reader_id}",
                )
                if cost_us is None:
                    result.read_failures += 1
                    cost_us = 1000.0  # failed request still burns time
                else:
                    result.read_latency.record(cost_us / 1000.0)
                    result.read_windows.record(
                        (sim.now_us + cost_us) / 1000.0
                    )
                yield Timeout(cost_us)
                yield Release(cpu)
                if rw_latch is not None:
                    yield Release(rw_latch)
                if store_latch is not None:
                    yield Release(store_latch)
                if is_gremlin:
                    yield Release(server_pool)

        def exclude_readers():
            """Writer side of the read-committed latch: every unit."""
            assert rw_latch is not None
            for _ in range(rw_latch.capacity):
                yield Acquire(rw_latch)

        def readmit_readers():
            assert rw_latch is not None
            for _ in range(rw_latch.capacity):
                yield Release(rw_latch)

        def writer_batched():
            """Batched pipeline: one group-committed txn per poll."""
            size = config.write_batch_size
            while sim.now_us < deadline_us:
                batch = consumer.poll(size)
                if not batch:
                    return
                events = [record.value for record in batch]
                if is_gremlin:
                    if (
                        server_pool.queue_depth
                        >= connector.server.queue_limit
                    ):
                        connector.server.crash()
                        result.server_crashed = True
                    yield Acquire(server_pool)
                if store_latch is not None:
                    yield Acquire(store_latch)
                if rw_latch is not None:
                    yield from exclude_readers()
                yield Acquire(checkpoint_lock)
                yield Acquire(cpu)
                cost_us = execute(
                    lambda evs=events: connector.apply_update_batch(evs)
                )
                if cost_us is not None:
                    per_event_us = cost_us / len(events)
                    for _ in events:
                        result.updates_applied += 1
                        result.write_latency.record(per_event_us / 1000.0)
                        result.write_windows.record(
                            (sim.now_us + cost_us) / 1000.0
                        )
                else:
                    cost_us = 1000.0
                yield Timeout(cost_us)
                yield Release(cpu)
                yield Release(checkpoint_lock)
                if rw_latch is not None:
                    yield from readmit_readers()
                if store_latch is not None:
                    yield Release(store_latch)
                if is_gremlin:
                    yield Release(server_pool)
                consumer.commit()

        def writer():
            while sim.now_us < deadline_us:
                batch = consumer.poll(16)
                if not batch:
                    return
                for record in batch:
                    if sim.now_us >= deadline_us:
                        return
                    event = record.value
                    if is_gremlin:
                        if (
                            server_pool.queue_depth
                            >= connector.server.queue_limit
                        ):
                            connector.server.crash()
                            result.server_crashed = True
                        yield Acquire(server_pool)
                    if store_latch is not None:
                        yield Acquire(store_latch)
                    if rw_latch is not None:
                        yield from exclude_readers()
                    yield Acquire(checkpoint_lock)
                    yield Acquire(cpu)
                    cost_us = execute(
                        lambda e=event: connector.apply_update(e)
                    )
                    if cost_us is not None:
                        result.updates_applied += 1
                        result.write_latency.record(cost_us / 1000.0)
                        result.write_windows.record(
                            (sim.now_us + cost_us) / 1000.0
                        )
                    else:
                        cost_us = 1000.0
                    yield Timeout(cost_us)
                    yield Release(cpu)
                    yield Release(checkpoint_lock)
                    if rw_latch is not None:
                        yield from readmit_readers()
                    if store_latch is not None:
                        yield Release(store_latch)
                    if is_gremlin:
                        yield Release(server_pool)
                consumer.commit()

        def checkpointer():
            """Periodic flushes stall the write path (Neo4j)."""
            while sim.now_us < deadline_us:
                yield Timeout(config.checkpoint_interval_ms * 1000.0)
                flushed = self.connector.checkpoint_pages()
                if flushed <= 0:
                    continue
                stall_us = flushed * config.checkpoint_stall_us_per_record
                yield Acquire(checkpoint_lock)
                yield Timeout(stall_us)
                yield Release(checkpoint_lock)

        for i in range(config.readers):
            sim.spawn(reader(i), name=f"reader-{i}")
        if config.write_batch_size > 1:
            sim.spawn(writer_batched(), name="writer")
        else:
            sim.spawn(writer(), name="writer")
        if connector.key == "neo4j-cypher":
            sim.spawn(checkpointer(), name="checkpointer")
        sim.run(until_us=deadline_us + 50_000.0)
        return result
