"""The LDBC workload driver analogue.

* :mod:`repro.driver.workload`  — the interactive query mix of Section 4.3
  (short reads + the two-hop complex query).
* :mod:`repro.driver.scheduler` — dependency-tracked update scheduling
  (LDBC's execution-time dependency windows).
* :mod:`repro.driver.loader`    — data-ingestion harnesses for Table 4 and
  Appendix A (1..16 concurrent loaders over the discrete-event simulator).
* :mod:`repro.driver.executor`  — the real-time interactive workload
  runner of Figure 3: N simulated readers + one writer consuming the
  Kafka update stream, with per-system contention models (Gremlin Server
  worker pool, Titan-B writer serialization, Neo4j checkpoint stalls).
"""

from repro.driver.workload import QueryMix, ReadOp
from repro.driver.scheduler import DependencyScheduler
from repro.driver.loader import LoadReport, concurrent_load, sequential_load
from repro.driver.executor import (
    InteractiveConfig,
    InteractiveResult,
    InteractiveWorkloadRunner,
)

__all__ = [
    "QueryMix",
    "ReadOp",
    "DependencyScheduler",
    "LoadReport",
    "sequential_load",
    "concurrent_load",
    "InteractiveConfig",
    "InteractiveResult",
    "InteractiveWorkloadRunner",
]
