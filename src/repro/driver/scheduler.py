"""Dependency-tracked update scheduling (the LDBC driver's strategy).

Each update is scheduled at a scaled offset of its creation time and may
not execute before its *dependency time* plus a safety window — e.g. a
comment cannot be created before the message it replies to.  The paper's
Kafka architecture keeps this: the producer enqueues events in dependency-
safe order, so the single consumer-side writer preserves correctness.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.snb.schema import UpdateEvent


@dataclass(frozen=True)
class ScheduledUpdate:
    due_ms: float  # simulated time at which the op becomes eligible
    event: UpdateEvent


class DependencyScheduler:
    """Maps update-stream timestamps onto driver time.

    ``compression`` scales social-network time to benchmark time (LDBC's
    time-compression ratio): ``10_000`` means 10 s of network activity
    plays back per benchmark millisecond.  ``safety_window_ms`` is the
    slack added after each dependency (LDBC defaults to a fixed window).
    """

    def __init__(
        self,
        events: list[UpdateEvent],
        *,
        compression: float = 10_000.0,
        safety_window_ms: float = 1.0,
    ) -> None:
        if compression <= 0:
            raise ValueError("compression must be positive")
        self.events = sorted(events)
        self.compression = compression
        self.safety_window_ms = safety_window_ms

    def schedule(self) -> Iterator[ScheduledUpdate]:
        """Yield events with due times, dependency-safe and monotonic."""
        if not self.events:
            return
        origin = self.events[0].creation_ms
        last_due = 0.0
        for event in self.events:
            due = (event.creation_ms - origin) / self.compression
            dependency_due = (
                max(0.0, (event.dependency_ms - origin)) / self.compression
                + self.safety_window_ms
            )
            due = max(due, dependency_due, last_due)
            last_due = due
            yield ScheduledUpdate(due, event)

    def verify_dependencies(self) -> bool:
        """Sanity check: no event is due before its dependency."""
        if not self.events:
            return True
        origin = self.events[0].creation_ms
        for scheduled in self.schedule():
            dependency_due = (
                max(0.0, scheduled.event.dependency_ms - origin)
                / self.compression
            )
            if scheduled.due_ms < dependency_due:
                return False
        return True
