"""The Section 4.3 interactive read mix.

The paper initially used the full LDBC SNB mix but had to drop the
long-running complex queries because the Gremlin Server could not survive
them under concurrency; the reported experiments use "a query mix
consisting of a two-hop neighbourhood based complex query and a set of
short read-only queries".  That reduced mix is the default here; the full
mix (with more complex-query weight) is available for the crash ablation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.benchmark import WorkloadParams
from repro.core.connectors.base import Connector


@dataclass(frozen=True)
class ReadOp:
    """One read operation drawn from the mix."""

    name: str
    args: tuple

    def execute(self, connector: Connector):
        return getattr(connector, self.name)(*self.args)


#: (operation, weight) — short reads dominate, as in LDBC's frequencies
REDUCED_MIX = [
    ("person_profile", 25),
    ("person_recent_posts", 10),
    ("friends_recent_posts", 5),
    ("person_friends", 15),
    ("message_content", 15),
    ("message_creator", 10),
    ("message_forum", 5),
    ("message_replies", 5),
    ("complex_two_hop", 10),
]

#: the original mix the Gremlin Server could not handle: heavier complex
#: queries including shortest paths
FULL_MIX = [
    ("person_profile", 15),
    ("person_recent_posts", 5),
    ("friends_recent_posts", 5),
    ("person_friends", 10),
    ("message_content", 10),
    ("message_creator", 5),
    ("message_forum", 5),
    ("message_replies", 5),
    ("complex_two_hop", 25),
    ("shortest_path", 15),
]


class QueryMix:
    """Draws read operations with curated parameters."""

    def __init__(
        self,
        params: WorkloadParams,
        mix: list[tuple[str, int]] | None = None,
        seed: int = 7,
    ) -> None:
        self.params = params
        spec = mix if mix is not None else REDUCED_MIX
        self._ops = [name for name, _ in spec]
        self._weights = [weight for _, weight in spec]
        self._rng = random.Random(seed)

    def draw(self) -> ReadOp:
        name = self._rng.choices(self._ops, weights=self._weights, k=1)[0]
        return ReadOp(name, self._args_for(name))

    def _args_for(self, name: str) -> tuple:
        rng = self._rng
        persons = self.params.person_ids
        messages = self.params.message_ids
        if name == "shortest_path":
            return self.params.path_pairs[
                rng.randrange(len(self.params.path_pairs))
            ]
        if name.startswith("message"):
            return (messages[rng.randrange(len(messages))],)
        if name in ("person_recent_posts", "friends_recent_posts"):
            return (persons[rng.randrange(len(persons))], 10)
        if name == "complex_two_hop":
            return (persons[rng.randrange(len(persons))], 20)
        return (persons[rng.randrange(len(persons))],)
