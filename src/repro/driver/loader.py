"""Data-ingestion harnesses (Table 4 and Appendix A).

Sequential loading measures the LDBC Gremlin loading utility one phase at
a time (all vertices, then all edges) so vertex/s and edge/s can be
reported separately, as Table 4 does.

Concurrent loading replays the same work from N simulated loader
processes on the discrete-event simulator, with per-backend write
contention models:

* Titan-C / Cassandra — log-structured writes, no shared latch: the only
  system that scales with loaders (Appendix A's finding);
* Titan-B / BerkeleyDB — a global writer latch held for the whole write,
  plus lock-thrashing penalties under queueing (its degradation);
* Sqlg / Postgres — the commit critical section serializes the tail of
  every write (transactional locking limits scaling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.connectors.gremlin import (
    iter_edge_specs,
    iter_vertex_specs,
)
from repro.simclock import (
    Acquire,
    CostModel,
    Release,
    Resource,
    Simulator,
    Timeout,
    meter,
)
from repro.snb.datagen import SnbDataset
from repro.sqlg import SqlgProvider
from repro.tinkerpop import Graph
from repro.tinkerpop.structure import GraphProvider, Vertex


@dataclass
class LoadReport:
    system: str
    loaders: int
    vertices: int
    edges: int
    vertex_seconds: float  # simulated
    edge_seconds: float

    @property
    def total_minutes(self) -> float:
        return (self.vertex_seconds + self.edge_seconds) / 60.0

    @property
    def vertices_per_second(self) -> float:
        return self.vertices / self.vertex_seconds if self.vertex_seconds else 0.0

    @property
    def edges_per_second(self) -> float:
        return self.edges / self.edge_seconds if self.edge_seconds else 0.0


def sequential_load(
    provider: GraphProvider,
    dataset: SnbDataset,
    model: CostModel | None = None,
) -> LoadReport:
    """Single-loader ingestion via embedded Gremlin traversals."""
    model = model or CostModel()
    g = Graph(provider).traversal()
    vertex: dict[int, Vertex] = {}

    with meter() as vertex_ledger:
        count_v = 0
        for label, props in iter_vertex_specs(dataset):
            t = g.addV(label)
            for key, value in props.items():
                t.property(key, value)
            vertex[props["id"]] = t.next()
            count_v += 1
    with meter() as edge_ledger:
        count_e = 0
        for label, out_id, in_id, props in iter_edge_specs(dataset):
            t = g.V(vertex[out_id].id).addE(label).to(vertex[in_id])
            for key, value in props.items():
                t.property(key, value)
            t.iterate()
            count_e += 1
    return LoadReport(
        system=provider.name,
        loaders=1,
        vertices=count_v,
        edges=count_e,
        vertex_seconds=vertex_ledger.cost_us(model) / 1e6,
        edge_seconds=edge_ledger.cost_us(model) / 1e6,
    )


def _write_policy(provider: GraphProvider) -> str:
    if getattr(provider, "serializes_writers", False):
        return "exclusive"  # Titan-B: BerkeleyDB writer serialization
    if isinstance(provider, SqlgProvider):
        return "commit"  # Postgres: commit critical section
    return "none"  # Cassandra LSM: concurrent appends


def concurrent_load(
    provider: GraphProvider,
    dataset: SnbDataset,
    loaders: int,
    model: CostModel | None = None,
    *,
    chunk: int = 16,
) -> LoadReport:
    """N-loader ingestion on the discrete-event simulator."""
    if loaders < 1:
        raise ValueError("need at least one loader")
    model = model or CostModel()
    g = Graph(provider).traversal()
    vertex: dict[int, Vertex] = {}
    policy = _write_policy(provider)

    def run_phase(items: list, do_item) -> float:
        sim = Simulator()
        latch = Resource(capacity=1, name="writer-latch")

        def loader(slice_items: list):
            for start in range(0, len(slice_items), chunk):
                batch = slice_items[start : start + chunk]
                with meter() as ledger:
                    for item in batch:
                        do_item(item)
                cost_us = model.cost_us(ledger.counters)
                if policy == "none":
                    yield Timeout(cost_us)
                elif policy == "exclusive":
                    # lock-thrash penalty grows with the queue (deadlock
                    # retries / lock-table churn in BerkeleyDB)
                    penalty = 1500.0 * latch.queue_depth
                    yield Acquire(latch)
                    yield Timeout(cost_us + penalty)
                    yield Release(latch)
                else:  # commit: tail of the write is serialized
                    yield Timeout(cost_us * 0.4)
                    yield Acquire(latch)
                    yield Timeout(cost_us * 0.6)
                    yield Release(latch)

        for i in range(loaders):
            sim.spawn(loader(items[i::loaders]), name=f"loader-{i}")
        return sim.run() / 1e6  # seconds

    def create_vertex(spec) -> None:
        label, props = spec
        t = g.addV(label)
        for key, value in props.items():
            t.property(key, value)
        vertex[props["id"]] = t.next()

    def create_edge(spec) -> None:
        label, out_id, in_id, props = spec
        t = g.V(vertex[out_id].id).addE(label).to(vertex[in_id])
        for key, value in props.items():
            t.property(key, value)
        t.iterate()

    vertex_specs = list(iter_vertex_specs(dataset))
    edge_specs = list(iter_edge_specs(dataset))
    vertex_seconds = run_phase(vertex_specs, create_vertex)
    edge_seconds = run_phase(edge_specs, create_edge)
    return LoadReport(
        system=provider.name,
        loaders=loaders,
        vertices=len(vertex_specs),
        edges=len(edge_specs),
        vertex_seconds=vertex_seconds,
        edge_seconds=edge_seconds,
    )
