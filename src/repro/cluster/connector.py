"""The cluster coordinator: N sharded engines behind one ``Connector``.

``ClusterConnector`` is a drop-in system under test — every harness in
the repo (lint, validate, sanitize, the Figure 3 interactive mix, the
latency tables) drives it through the same interface as a single-node
engine.  Internally it:

* partitions the loaded dataset by person-id hash into reference-closed
  shards (:mod:`repro.cluster.partition`), one stock engine per shard;
* routes single-person / single-message reads to the one home shard that
  holds the entity's complete adjacency, and fans multi-person reads
  (two-hop, friends-of-friends, distributed BFS) out as scatter waves
  with critical-path cost accounting (:mod:`repro.cluster.scatter`);
* funnels every write — client inserts and the ghost materializations
  they trigger — through each target shard's
  :class:`~repro.cluster.pods.ShardPrimary`, which taps the event into
  the shard's own CDC topic-partition; cross-shard inserts take
  exclusive ``("shard", i)`` locks in one globally sorted order
  (:meth:`LockManager.acquire_many`), so concurrent multi-shard writers
  cannot deadlock;
* optionally serves reads from CDC-fed replicas under a bounded-
  staleness budget (``set_read_preference("replica", budget)``);
* keeps an opt-in coordinator result cache keyed by the **epochs of the
  shards a read touches** — a write bumps only its own shard's epoch, so
  cached reads on other shards survive.  The epoch key is sound because
  the ghost-closure invariant places every data dependency of a routed
  read on the shards that read touches.  Replica-served reads with a
  nonzero staleness budget bypass the cache (a stale answer must not be
  re-served after the replicas catch up).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from typing import Any, TypeVar

from repro.cache import CacheStats, LRUCache
from repro.cluster.partition import (
    MessageDirectory,
    Partitioned,
    partition_dataset,
    shard_of,
)
from repro.cluster.pods import CDC_TOPIC, ReadReplica, ShardPrimary
from repro.cluster.scatter import ScatterGather, gather_sorted, gather_union
from repro.core.connectors.base import Connector
from repro.kafka import Broker, Producer
from repro.simclock.costmodel import CostModel
from repro.simclock.ledger import charge
from repro.snb.datagen import SnbDataset
from repro.snb.schema import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Person,
    Post,
    UpdateEvent,
    UpdateKind,
)
from repro.txn import oracle
from repro.txn.locks import LockManager, LockMode

T = TypeVar("T")

_MISS = object()

#: queued per-shard work: ordered events (client + ghost) for one wave
_Ops = dict[int, list[UpdateEvent]]


class ClusterConnector(Connector):
    """A horizontally sharded deployment of one backend engine."""

    key = "cluster"
    language = "scatter/gather"
    system = "Cluster"
    dialect = None  # per-shard engines validate their own catalogs

    def __init__(
        self,
        backend: str = "postgres-sql",
        shards: int = 4,
        replicas: int = 0,
        *,
        staleness_budget: int = 0,
        read_preference: str = "primary",
        model: CostModel | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        if backend == self.key:
            raise ValueError("cannot nest clusters")
        self.backend = backend
        self.shard_count = shards
        self.replica_count = replicas
        self.system = f"Cluster[{backend} x{shards}]"
        self.scatter = ScatterGather(model)
        self.locks = LockManager()
        self._txn_seq = 0
        self._read_preference = "primary"
        self._staleness_budget = 0
        self._rr = 0
        self._cache: LRUCache | None = None
        self.primaries: list[ShardPrimary] = []
        self.replicas: list[list[ReadReplica]] = []
        self.part: Partitioned | None = None
        self.directory: MessageDirectory = MessageDirectory()
        self._broker: Broker | None = None
        self._producer: Producer | None = None
        self.set_read_preference(read_preference, staleness_budget)

    # -- configuration -------------------------------------------------------

    def set_read_preference(self, preference: str, budget: int = 0) -> None:
        """Serve reads from ``"primary"`` or ``"replica"`` pods.

        ``budget`` is the bounded-staleness knob for replica reads: the
        maximum CDC lag, in records, a serving replica may carry.  A
        read that finds its replica further behind first drains it to
        within the budget (and pays for that catch-up).
        """
        if preference not in ("primary", "replica"):
            raise ValueError(f"unknown read preference {preference!r}")
        if budget < 0:
            raise ValueError("staleness budget must be >= 0")
        self._read_preference = preference
        self._staleness_budget = budget

    # -- lifecycle -----------------------------------------------------------

    def load(self, dataset: SnbDataset) -> None:
        from repro.core.connectors import SUT_KEYS, make_connector

        if self.backend not in SUT_KEYS:
            raise KeyError(f"unknown cluster backend {self.backend!r}")
        self.part = partition_dataset(dataset, self.shard_count)
        self.directory = self.part.directory
        self._broker = Broker()
        self._broker.create_topic(CDC_TOPIC, partitions=self.shard_count)
        self._producer = Producer(self._broker, batch_size=1)
        self.primaries = []
        self.replicas = []
        for s in range(self.shard_count):
            engine = make_connector(self.backend)
            engine.load(self.part.shards[s])
            self.primaries.append(ShardPrimary(s, engine, self._producer))
            pods: list[ReadReplica] = []
            for r in range(self.replica_count):
                replica_engine = make_connector(self.backend)
                replica_engine.load(self.part.shards[s])
                # pods of one shard share the bytecode/closure cache:
                # a replica warms up without recompiling what its
                # primary already compiled
                primary_server = getattr(engine, "server", None)
                replica_server = getattr(replica_engine, "server", None)
                if primary_server is not None and replica_server is not None:
                    replica_server.share_closure_cache(primary_server)
                pods.append(
                    ReadReplica(s, r, replica_engine, self._broker)
                )
            self.replicas.append(pods)

    def size_bytes(self) -> int:
        return sum(p.engine.size_bytes() for p in self.primaries)

    # -- pod selection / read plumbing ---------------------------------------

    def _home(self, person_id: int) -> int:
        return shard_of(person_id, self.shard_count)

    def _pick(
        self, s: int
    ) -> tuple[tuple[int, str], Connector, ReadReplica | None]:
        """Choose the pod that serves a read on shard ``s``."""
        if self._read_preference == "replica" and self.replicas[s]:
            idx = self._rr % len(self.replicas[s])
            self._rr += 1
            replica = self.replicas[s][idx]
            return (s, f"replica-{idx}"), replica.engine, replica
        return (s, "primary"), self.primaries[s].engine, None

    def _sub_call(
        self,
        engine: Connector,
        replica: ReadReplica | None,
        run: Callable[[Connector], T],
    ) -> Callable[[], T]:
        def call() -> T:
            if replica is not None:
                replica.catch_up(self._staleness_budget)
            return run(engine)

        return call

    def _call_one(self, s: int, run: Callable[[Connector], T]) -> T:
        """Route one read to shard ``s`` as a one-pod scatter wave."""
        pod, engine, replica = self._pick(s)
        return self.scatter.run({pod: self._sub_call(engine, replica, run)})[
            pod
        ]

    def _fanout(
        self,
        person_ids: Iterable[int],
        run: Callable[[Connector, list[int]], T],
    ) -> list[T]:
        """Group ids by home shard, one concurrent sub-call per shard."""
        groups: dict[int, list[int]] = {}
        for pid in person_ids:
            groups.setdefault(self._home(pid), []).append(pid)
        calls: dict[Hashable, Callable[[], T]] = {}
        for s in sorted(groups):
            pod, engine, replica = self._pick(s)
            calls[pod] = self._sub_call(
                engine,
                replica,
                lambda e, group=groups[s]: run(e, group),
            )
        results = self.scatter.run(calls)
        return [results[pod] for pod in calls]

    def _read(
        self,
        op: str,
        args: tuple,
        footprint: tuple[int, ...] | None,
        compute: Callable[[], T],
    ) -> T:
        """Serve via the coordinator cache, keyed by touched-shard epochs.

        ``footprint`` names the shards whose state the answer depends on
        (``None`` = all shards, for scatter reads).  Stale entries keep
        their old epoch key and age out of the LRU.
        """
        cache = self._cache
        stale_ok = self._read_preference == "replica" and (
            self._staleness_budget > 0
        )
        if cache is None or stale_ok or oracle.stale_reads():
            # a held MVCC snapshot older than the latest write must not
            # see (or poison) answers computed from newer shard state
            return compute()
        shards = (
            range(self.shard_count) if footprint is None else footprint
        )
        key = (op, args, tuple(self.primaries[s].epoch for s in shards))
        value = cache.get(key, _MISS)
        if value is not _MISS:
            charge("cache_hit")
            return value  # type: ignore[return-value]
        value = compute()
        cache.put(key, value)
        return value

    # -- Section 4.2 micro reads ---------------------------------------------

    def point_lookup(self, person_id: int) -> tuple:
        s = self._home(person_id)
        return self._read(
            "point_lookup",
            (person_id,),
            (s,),
            lambda: self._call_one(s, lambda e: e.point_lookup(person_id)),
        )

    def one_hop(self, person_id: int) -> list[int]:
        s = self._home(person_id)
        return self._read(
            "one_hop",
            (person_id,),
            (s,),
            lambda: self._call_one(s, lambda e: e.one_hop(person_id)),
        )

    def two_hop(self, person_id: int) -> list[int]:
        return self._read(
            "two_hop",
            (person_id,),
            None,
            lambda: self._two_hop_compute(person_id),
        )

    def _two_hop_compute(self, person_id: int) -> list[int]:
        friends = self.one_hop(person_id)
        if not friends:
            return []
        runs = self._fanout(
            friends,
            lambda e, group: set().union(*(e.one_hop(f) for f in group)),
        )
        return gather_union(runs, exclude=(person_id,))

    def shortest_path(self, person1: int, person2: int) -> int | None:
        return self._read(
            "shortest_path",
            (person1, person2),
            None,
            lambda: self._shortest_path_compute(person1, person2),
        )

    def _shortest_path_compute(
        self, person1: int, person2: int
    ) -> int | None:
        """Distributed frontier BFS, depth-capped like the engines (12)."""
        if person1 == person2:
            return 0
        visited = {person1}
        frontier = [person1]
        depth = 0
        while frontier and depth < 12:
            depth += 1
            runs = self._fanout(
                frontier,
                lambda e, group: set().union(
                    *(e.one_hop(f) for f in group)
                ),
            )
            neighbors: set[int] = set().union(*runs)
            charge("gather_item", len(neighbors))
            if person2 in neighbors:
                return depth
            frontier = sorted(neighbors - visited)
            visited |= neighbors
        return None

    # -- LDBC short reads ------------------------------------------------------

    def person_profile(self, person_id: int) -> tuple:
        s = self._home(person_id)
        return self._read(
            "person_profile",
            (person_id,),
            (s,),
            lambda: self._call_one(s, lambda e: e.person_profile(person_id)),
        )

    def person_recent_posts(self, person_id: int, limit: int = 10) -> list:
        s = self._home(person_id)
        return self._read(
            "person_recent_posts",
            (person_id, limit),
            (s,),
            lambda: self._call_one(
                s, lambda e: e.person_recent_posts(person_id, limit)
            ),
        )

    def person_friends(self, person_id: int) -> list[tuple]:
        s = self._home(person_id)
        return self._read(
            "person_friends",
            (person_id,),
            (s,),
            lambda: self._call_one(s, lambda e: e.person_friends(person_id)),
        )

    def _message_home(self, message_id: int) -> int | None:
        return self.directory.home.get(message_id)

    def message_content(self, message_id: int) -> tuple:
        s = self._message_home(message_id)
        if s is None:
            return ()
        return self._read(
            "message_content",
            (message_id,),
            (s,),
            lambda: self._call_one(
                s, lambda e: e.message_content(message_id)
            ),
        )

    def message_creator(self, message_id: int) -> tuple:
        s = self._message_home(message_id)
        if s is None:
            return ()
        return self._read(
            "message_creator",
            (message_id,),
            (s,),
            lambda: self._call_one(
                s, lambda e: e.message_creator(message_id)
            ),
        )

    def message_forum(self, message_id: int) -> tuple:
        if message_id not in self.directory.root:
            return ()
        # a comment's containing forum is its root post's; re-anchoring
        # at the root keeps this a single-shard read (the root's home
        # holds the forum ghost) with the same answer
        root = self.directory.root[message_id]
        target = message_id if root is None else root
        s = self.directory.home[target]
        return self._read(
            "message_forum",
            (target,),
            (s,),
            lambda: self._call_one(s, lambda e: e.message_forum(target)),
        )

    def message_replies(self, message_id: int) -> list[tuple]:
        s = self._message_home(message_id)
        if s is None:
            return []
        # every reply is mirrored at its parent's home shard
        return self._read(
            "message_replies",
            (message_id,),
            (s,),
            lambda: self._call_one(
                s, lambda e: e.message_replies(message_id)
            ),
        )

    # -- complex reads ---------------------------------------------------------

    def complex_two_hop(self, person_id: int, limit: int = 20) -> list[tuple]:
        return self._read(
            "complex_two_hop",
            (person_id, limit),
            None,
            lambda: self._complex_two_hop_compute(person_id, limit),
        )

    def _complex_two_hop_compute(
        self, person_id: int, limit: int
    ) -> list[tuple]:
        ids = self.two_hop(person_id)[:limit]
        if not ids:
            return []
        runs = self._fanout(
            ids,
            lambda e, group: [
                (i,) + tuple(e.point_lookup(i)[:2]) for i in group
            ],
        )
        return gather_sorted(runs, key=lambda row: row[0], limit=limit)

    def friends_recent_posts(
        self, person_id: int, limit: int = 10
    ) -> list[tuple]:
        return self._read(
            "friends_recent_posts",
            (person_id, limit),
            None,
            lambda: self._friends_recent_posts_compute(person_id, limit),
        )

    def _friends_recent_posts_compute(
        self, person_id: int, limit: int
    ) -> list[tuple]:
        friends = self.one_hop(person_id)
        if not friends:
            return []

        def per_shard(e: Connector, group: list[int]) -> list[tuple]:
            rows: list[tuple] = []
            for friend in group:
                for mid, content, date in e.person_recent_posts(
                    friend, limit
                ):
                    rows.append((mid, friend, content, date))
            rows.sort(key=lambda r: (-r[3], -r[0]))
            return rows[:limit]

        runs = self._fanout(friends, per_shard)
        return gather_sorted(
            runs, key=lambda r: (-r[3], -r[0]), limit=limit
        )

    # -- write path ------------------------------------------------------------

    def _next_txn(self) -> int:
        self._txn_seq += 1
        return self._txn_seq

    def _queue(self, ops: _Ops, s: int, event: UpdateEvent) -> None:
        ops.setdefault(s, []).append(event)

    def _ghost(self, kind: UpdateKind, payload: Any) -> UpdateEvent:
        created = getattr(payload, "creation_date", 0)
        return UpdateEvent(kind, created, 0, payload)

    def _ensure_person(self, pid: int, s: int, ops: _Ops) -> None:
        assert self.part is not None
        if pid in self.part.persons_at[s]:
            return
        self.part.persons_at[s].add(pid)
        person = self.part.person_payload[pid]
        self._queue(ops, s, self._ghost(UpdateKind.ADD_PERSON, person))

    def _ensure_forum(self, fid: int, s: int, ops: _Ops) -> None:
        assert self.part is not None
        if fid in self.part.forums_at[s]:
            return
        forum = self.part.forum_payload[fid]
        self._ensure_person(forum.moderator, s, ops)
        self.part.forums_at[s].add(fid)
        self._queue(ops, s, self._ghost(UpdateKind.ADD_FORUM, forum))

    def _ensure_message(self, mid: int, s: int, ops: _Ops) -> None:
        """Ghost a message (and its reference closure) onto shard ``s``."""
        assert self.part is not None
        if mid in self.part.messages_at[s]:
            return
        payload = self.part.message_payload[mid]
        self._ensure_person(payload.creator, s, ops)
        if isinstance(payload, Post):
            self._ensure_forum(payload.forum, s, ops)
            kind = UpdateKind.ADD_POST
        else:
            self._ensure_message(payload.reply_of, s, ops)
            self._ensure_message(payload.root_post, s, ops)
            kind = UpdateKind.ADD_COMMENT
        self.part.messages_at[s].add(mid)
        self._queue(ops, s, self._ghost(kind, payload))

    def _plan_event(self, event: UpdateEvent, ops: _Ops) -> None:
        """Queue one client event (plus any ghosts it needs) per shard."""
        assert self.part is not None
        kind = event.kind
        payload: Any = event.payload
        if kind is UpdateKind.ADD_PERSON:
            self.part.person_payload[payload.id] = payload
            s = self._home(payload.id)
            self.part.persons_at[s].add(payload.id)
            self._queue(ops, s, event)
        elif kind is UpdateKind.ADD_FRIENDSHIP:
            for s in sorted(
                {self._home(payload.person1), self._home(payload.person2)}
            ):
                self._ensure_person(payload.person1, s, ops)
                self._ensure_person(payload.person2, s, ops)
                self._queue(ops, s, event)
        elif kind is UpdateKind.ADD_FORUM:
            self.part.forum_payload[payload.id] = payload
            s = self._home(payload.moderator)
            self.part.forums_at[s].add(payload.id)
            self._queue(ops, s, event)
        elif kind is UpdateKind.ADD_FORUM_MEMBERSHIP:
            s = self._home(payload.person)
            self._ensure_forum(payload.forum, s, ops)
            self._queue(ops, s, event)
        elif kind is UpdateKind.ADD_POST:
            self.part.message_payload[payload.id] = payload
            self.directory.register_post(payload, self.shard_count)
            s = self._home(payload.creator)
            self._ensure_forum(payload.forum, s, ops)
            self.part.messages_at[s].add(payload.id)
            self._queue(ops, s, event)
        elif kind is UpdateKind.ADD_COMMENT:
            self.part.message_payload[payload.id] = payload
            self.directory.register_comment(payload, self.shard_count)
            home = self._home(payload.creator)
            mirror = self.directory.home[payload.reply_of]
            for s in sorted({home, mirror}):
                self._ensure_person(payload.creator, s, ops)
                self._ensure_message(payload.reply_of, s, ops)
                self._ensure_message(payload.root_post, s, ops)
                self.part.messages_at[s].add(payload.id)
                self._queue(ops, s, event)
        elif kind in (
            UpdateKind.ADD_POST_LIKE,
            UpdateKind.ADD_COMMENT_LIKE,
        ):
            s = self.directory.home[payload.message]
            self._ensure_person(payload.person, s, ops)
            self._queue(ops, s, event)
        else:  # pragma: no cover - exhaustive over UpdateKind
            raise ValueError(f"unknown update kind {kind}")

    def _apply_events(self, events: list[UpdateEvent]) -> None:
        """Plan, lock, and apply a group of events as one scatter wave.

        Shard locks are taken with :meth:`LockManager.acquire_many`, i.e.
        in one global sorted order — two coordinators (or one coordinator
        and an administrative task) locking overlapping shard sets cannot
        deadlock.  Each shard's events apply in plan order through its
        primary, which is also the CDC partition order.
        """
        ops: _Ops = {}
        for event in events:
            self._plan_event(event, ops)
        if not ops:
            return
        txn = self._next_txn()
        self.locks.acquire_many(
            txn,
            [("shard", s) for s in ops],
            LockMode.EXCLUSIVE,
        )
        try:
            calls: dict[Hashable, Callable[[], None]] = {}
            for s in sorted(ops):
                primary, queued = self.primaries[s], ops[s]

                def apply_all(
                    p: ShardPrimary = primary,
                    evs: list[UpdateEvent] = queued,
                ) -> None:
                    for ev in evs:
                        p.apply(ev)

                calls[(s, "primary")] = apply_all
            self.scatter.run(calls)
            assert self._producer is not None
            self._producer.flush()
        finally:
            self.locks.release_all(txn)

    def apply_update(self, event: UpdateEvent) -> None:
        self._apply_events([event])

    def apply_update_batch(self, events: list[UpdateEvent]) -> None:
        self._apply_events(list(events))

    def add_person(self, person: Person) -> None:
        self._apply_events(
            [self._ghost(UpdateKind.ADD_PERSON, person)]
        )

    def add_friendship(self, knows: Knows) -> None:
        self._apply_events(
            [self._ghost(UpdateKind.ADD_FRIENDSHIP, knows)]
        )

    def add_forum(self, forum: Forum) -> None:
        self._apply_events([self._ghost(UpdateKind.ADD_FORUM, forum)])

    def add_forum_membership(self, membership: ForumMembership) -> None:
        event = UpdateEvent(
            UpdateKind.ADD_FORUM_MEMBERSHIP,
            membership.join_date,
            0,
            membership,
        )
        self._apply_events([event])

    def add_post(self, post: Post) -> None:
        self._apply_events([self._ghost(UpdateKind.ADD_POST, post)])

    def add_comment(self, comment: Comment) -> None:
        self._apply_events([self._ghost(UpdateKind.ADD_COMMENT, comment)])

    def add_like(self, like: Like) -> None:
        kind = (
            UpdateKind.ADD_POST_LIKE
            if self.directory.root.get(like.message) is None
            else UpdateKind.ADD_COMMENT_LIKE
        )
        self._apply_events([self._ghost(kind, like)])

    # -- replication -----------------------------------------------------------

    def sync_replicas(self, budget: int = 0) -> int:
        """Drain every replica to within ``budget`` CDC records."""
        calls: dict[Hashable, Callable[[], int]] = {}
        for pods in self.replicas:
            for replica in pods:
                calls[
                    (replica.shard_id, f"replica-{replica.replica_id}")
                ] = lambda r=replica: r.catch_up(budget)
        if not calls:
            return 0
        return sum(self.scatter.run(calls).values())

    def replica_staleness(self) -> dict[tuple[int, int], int]:
        """Current CDC lag, in records, of every replica pod."""
        return {
            (r.shard_id, r.replica_id): r.staleness()
            for pods in self.replicas
            for r in pods
        }

    def max_staleness(self) -> int:
        return max(self.replica_staleness().values(), default=0)

    # -- harness hooks ---------------------------------------------------------

    def set_execution_mode(self, mode: str) -> None:
        for primary in self.primaries:
            primary.engine.set_execution_mode(mode)
        for pods in self.replicas:
            for replica in pods:
                replica.engine.set_execution_mode(mode)

    def set_isolation_level(self, level: str) -> None:
        """Pin the isolation level on every shard engine, replicas too.

        Replica reads then compose bounded staleness (which CDC offset
        the pod has applied) with snapshot isolation (which versions of
        that applied state a read observes).
        """
        for primary in self.primaries:
            primary.engine.set_isolation_level(level)
        for pods in self.replicas:
            for replica in pods:
                replica.engine.set_isolation_level(level)

    def enable_caching(self) -> None:
        self._cache = LRUCache(4096, name="cluster-coordinator")
        for primary in self.primaries:
            primary.engine.enable_caching()
        for pods in self.replicas:
            for replica in pods:
                replica.engine.enable_caching()

    def cache_stats(self) -> list[CacheStats]:
        rows: list[CacheStats] = []
        if self._cache is not None:
            rows.append(self._cache.stats())
        for primary in self.primaries:
            rows.extend(primary.engine.cache_stats())
        for pods in self.replicas:
            for replica in pods:
                rows.extend(replica.engine.cache_stats())
        return rows

    def sanitize_targets(self) -> dict[str, object]:
        # per-shard engines are stock single-node engines whose integrity
        # audits run in single-node mode; the cluster layer's own
        # invariants are covered by the parity and CDC-ordering tests
        return {}

    def checkpoint_pages(self) -> int:
        return sum(p.engine.checkpoint_pages() for p in self.primaries)
