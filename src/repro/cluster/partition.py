"""Hash partitioning of an SNB dataset with reference-closed shards.

Persons are partitioned by id hash (:func:`shard_of`, the same CRC the
Kafka producer uses for keys); every other dynamic entity follows a
person:

* a **knows** edge lives on *both* endpoint home shards;
* a **forum**'s home is its moderator's shard;
* a **message**'s home is its creator's shard;
* a **comment** is additionally mirrored at its parent message's home so
  ``message_replies`` stays a single-shard read;
* a **membership** lives on the member's shard, a **like** on the liked
  message's home.

Each shard's engine is a stock single-node engine that knows nothing
about the cluster, and every engine's loader dereferences its foreign
keys (Cypher resolves node objects, Gremlin edge endpoints, SQL joins
against dimension rows).  A naive partition would hand them danglers, so
the partitioner computes the **ghost closure**: wherever an entity is
present, everything it references is present too — referenced persons
(knows endpoints, moderators, creators, likers, members), the forum of
every present post, and a present comment's full ancestor chain up to
its root post.  Ghosts are full-fidelity copies; they are safe because
the router only ever *reads* an entity at its home shard (the one place
its adjacency is complete), and the update stream is insert-only so a
ghost can never go stale.

Static dimension entities (places, tags, tag classes, organisations) are
replicated to every shard, exactly like dimension-table replication in a
sharded RDBMS.
"""

from __future__ import annotations

import zlib
from dataclasses import replace

from repro.snb.datagen import SnbDataset
from repro.snb.schema import Comment, Post


def shard_of(person_id: int, shards: int) -> int:
    """Home shard of a person id (CRC32 hash, like the Kafka partitioner)."""
    return zlib.crc32(str(person_id).encode()) % shards


class MessageDirectory:
    """Coordinator-side metadata: where every message lives.

    Maps message id -> (home shard, creator, root post id or ``None`` for
    posts).  The scatter/gather router consults it to turn ``message_*``
    reads into single-shard calls, and the write path uses it to locate
    the parent of an incoming comment.
    """

    __slots__ = ("home", "creator", "root")

    def __init__(self) -> None:
        self.home: dict[int, int] = {}
        self.creator: dict[int, int] = {}
        self.root: dict[int, int | None] = {}

    def register_post(self, post: Post, shards: int) -> None:
        self.home[post.id] = shard_of(post.creator, shards)
        self.creator[post.id] = post.creator
        self.root[post.id] = None

    def register_comment(self, comment: Comment, shards: int) -> None:
        self.home[comment.id] = shard_of(comment.creator, shards)
        self.creator[comment.id] = comment.creator
        self.root[comment.id] = comment.root_post


class Partitioned:
    """The result of :func:`partition_dataset`.

    ``shards[i]`` is a reference-closed :class:`SnbDataset` loadable into
    any stock engine; the presence sets and payload directories are the
    coordinator state the live write path extends as the update stream
    creates new entities (and new ghosts).
    """

    def __init__(self, count: int) -> None:
        self.count = count
        self.shards: list[SnbDataset] = []
        #: per-shard presence: which entity ids exist on shard ``s``
        self.persons_at: list[set[int]] = [set() for _ in range(count)]
        self.forums_at: list[set[int]] = [set() for _ in range(count)]
        self.messages_at: list[set[int]] = [set() for _ in range(count)]
        #: full payloads by id (the coordinator's directory service)
        self.person_payload: dict[int, object] = {}
        self.forum_payload: dict[int, object] = {}
        self.message_payload: dict[int, Post | Comment] = {}
        self.directory = MessageDirectory()


def partition_dataset(dataset: SnbDataset, shards: int) -> Partitioned:
    """Split ``dataset`` into ``shards`` reference-closed sub-datasets."""
    if shards < 1:
        raise ValueError("need at least one shard")
    part = Partitioned(shards)
    home = lambda pid: shard_of(pid, shards)  # noqa: E731

    for person in dataset.persons:
        part.person_payload[person.id] = person
        part.persons_at[home(person.id)].add(person.id)
    for forum in dataset.forums:
        part.forum_payload[forum.id] = forum
    for post in dataset.posts:
        part.message_payload[post.id] = post
        part.directory.register_post(post, shards)
    for comment in dataset.comments:
        part.message_payload[comment.id] = comment
        part.directory.register_comment(comment, shards)

    def ensure_person(pid: int, s: int) -> None:
        part.persons_at[s].add(pid)

    def ensure_forum(fid: int, s: int) -> None:
        if fid in part.forums_at[s]:
            return
        part.forums_at[s].add(fid)
        ensure_person(part.forum_payload[fid].moderator, s)

    def ensure_message(mid: int, s: int) -> None:
        """Make a message (and its reference closure) present on ``s``."""
        if mid in part.messages_at[s]:
            return
        part.messages_at[s].add(mid)
        payload = part.message_payload[mid]
        ensure_person(payload.creator, s)
        if isinstance(payload, Post):
            ensure_forum(payload.forum, s)
        else:
            ensure_message(payload.reply_of, s)
            ensure_message(payload.root_post, s)

    # knows: both endpoint homes, ghosting the remote endpoint
    knows_at: list[list] = [[] for _ in range(shards)]
    for knows in dataset.knows:
        for s in {home(knows.person1), home(knows.person2)}:
            knows_at[s].append(knows)
            ensure_person(knows.person1, s)
            ensure_person(knows.person2, s)

    for forum in dataset.forums:
        ensure_forum(forum.id, home(forum.moderator))

    memberships_at: list[list] = [[] for _ in range(shards)]
    for m in dataset.memberships:
        s = home(m.person)
        memberships_at[s].append(m)
        ensure_person(m.person, s)
        ensure_forum(m.forum, s)

    for post in dataset.posts:
        ensure_message(post.id, home(post.creator))
    for comment in dataset.comments:
        # home (creator's shard) + mirror at the parent's home, so
        # message_replies(parent) is answered entirely at that home
        ensure_message(comment.id, home(comment.creator))
        ensure_message(comment.id, part.directory.home[comment.reply_of])

    likes_at: list[list] = [[] for _ in range(shards)]
    for like in dataset.likes:
        s = part.directory.home[like.message]
        likes_at[s].append(like)
        ensure_person(like.person, s)

    for s in range(shards):
        part.shards.append(
            replace(
                dataset,
                persons=[
                    p for p in dataset.persons if p.id in part.persons_at[s]
                ],
                knows=knows_at[s],
                forums=[
                    f for f in dataset.forums if f.id in part.forums_at[s]
                ],
                memberships=memberships_at[s],
                posts=[
                    p for p in dataset.posts if p.id in part.messages_at[s]
                ],
                comments=[
                    c for c in dataset.comments if c.id in part.messages_at[s]
                ],
                likes=likes_at[s],
                updates=[],  # routed live by the cluster driver
            )
        )
    return part
