"""Scatter/gather: fan sub-operations out to pods, merge on the way back.

The cost story is the point.  Each pod's sub-operation runs under an
:func:`repro.simclock.ledger.isolated` ledger, so its engine charges land
on that pod alone; the coordinator then charges the *ambient* ledgers one
``shard_rtt`` for the wave, one ``shard_msg`` per contacted pod, and
``scatter_wait_us`` units equal to the **slowest** pod's simulated cost —
the critical path.  That max-not-sum accounting is what makes N shards
parallel hardware instead of N-fold work, while the per-pod ``busy_us``
totals let the bench compute open-loop cluster throughput as
``ops / max(pod busy time)``.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Hashable, Iterable, Mapping, Sequence
from typing import Any, TypeVar

from repro.simclock.costmodel import CostModel
from repro.simclock.ledger import charge, isolated

T = TypeVar("T")


class ScatterGather:
    """Executes scatter waves and accounts pod busy time."""

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model or CostModel()
        #: pod key -> accumulated simulated busy microseconds
        self.busy_us: dict[Hashable, float] = {}
        self.waves = 0

    def run(
        self, calls: Mapping[Hashable, Callable[[], T]]
    ) -> dict[Hashable, T]:
        """One wave: run every pod's sub-call, charge the critical path."""
        results: dict[Hashable, T] = {}
        slowest = 0.0
        for pod, call in calls.items():
            charge("shard_msg")
            with isolated() as ledger:
                results[pod] = call()
            us = ledger.cost_us(self.model)
            self.busy_us[pod] = self.busy_us.get(pod, 0.0) + us
            slowest = max(slowest, us)
        charge("shard_rtt")
        charge("scatter_wait_us", slowest)
        self.waves += 1
        return results

    def max_busy_us(self) -> float:
        """The busiest pod's accumulated time (open-loop makespan)."""
        return max(self.busy_us.values(), default=0.0)

    def reset_busy(self) -> None:
        self.busy_us.clear()
        self.waves = 0


def gather_sorted(
    runs: Iterable[Sequence[T]],
    *,
    key: Callable[[T], Any],
    limit: int | None = None,
) -> list[T]:
    """Ordered k-way merge of per-shard sorted runs (heap, not re-sort)."""
    out: list[T] = []
    for row in heapq.merge(*runs, key=key):
        out.append(row)
        if limit is not None and len(out) >= limit:
            break
    charge("gather_item", len(out))
    return out


def gather_union(
    runs: Iterable[Iterable[int]], *, exclude: Iterable[int] = ()
) -> list[int]:
    """Sorted union of per-shard id sets (two-hop style merges)."""
    union: set[int] = set()
    for run in runs:
        union.update(run)
    union.difference_update(exclude)
    charge("gather_item", len(union))
    return sorted(union)
