"""Horizontal sharding: scatter/gather driver + CDC-fed read replicas.

The cluster layer scales the reproduction past one engine instance:

* :mod:`repro.cluster.partition` — person-id hash partitioning with the
  ghost closure that keeps every shard loadable by stock engines;
* :mod:`repro.cluster.scatter` — concurrent fan-out with critical-path
  cost accounting and ordered k-way gathers;
* :mod:`repro.cluster.pods` — shard primaries tapping every write into a
  per-shard CDC topic-partition, and lag-tracked read replicas with a
  bounded-staleness knob;
* :mod:`repro.cluster.connector` — the coordinator, a drop-in
  :class:`~repro.core.connectors.base.Connector` (registry key
  ``"cluster"``) every existing harness can drive unchanged.
"""

from repro.cluster.connector import ClusterConnector
from repro.cluster.partition import (
    MessageDirectory,
    Partitioned,
    partition_dataset,
    shard_of,
)
from repro.cluster.pods import CDC_TOPIC, ReadReplica, ShardPrimary
from repro.cluster.scatter import ScatterGather, gather_sorted, gather_union

__all__ = [
    "CDC_TOPIC",
    "ClusterConnector",
    "MessageDirectory",
    "Partitioned",
    "ReadReplica",
    "ScatterGather",
    "ShardPrimary",
    "gather_sorted",
    "gather_union",
    "partition_dataset",
    "shard_of",
]
