"""Shard pods: the primary (with its CDC tap) and lag-tracked replicas.

Every mutation of a shard — routed client writes *and* coordinator ghost
materializations — funnels through :meth:`ShardPrimary.apply`, which
applies the event to the primary engine and produces it to the shard's
own partition of the CDC topic.  One partition per shard is the whole
ordering story: a replica consuming exactly that partition replays the
identical per-shard event sequence (the neo4j-cdc-sync pipeline's
single-partition pitfall, made structural instead of accidental).

Replicas measure staleness as consumer lag in records; a bounded-
staleness read first drains the replica to within the caller's budget,
charging the catch-up work to the read that demanded the freshness.
"""

from __future__ import annotations

from repro.core.connectors.base import Connector
from repro.kafka import Broker, Consumer, Producer
from repro.snb.schema import UpdateEvent

#: the change-data-capture topic (one partition per shard)
CDC_TOPIC = "snb-cdc"


class ShardPrimary:
    """One shard's authoritative engine plus its change-data-capture tap."""

    def __init__(
        self,
        shard_id: int,
        engine: Connector,
        producer: Producer,
        *,
        topic: str = CDC_TOPIC,
    ) -> None:
        self.shard_id = shard_id
        self.engine = engine
        self.producer = producer
        self.topic = topic
        #: bumped on every applied event; keys the coordinator cache
        self.epoch = 0
        #: per-shard applied-event order (what each partition must mirror)
        self.applied: list[UpdateEvent] = []

    def apply(self, event: UpdateEvent) -> None:
        """Apply one event and emit it to this shard's CDC partition."""
        self.engine.apply_update(event)
        self.producer.send(
            self.topic,
            key=self.shard_id,
            value=event,
            timestamp_ms=event.creation_ms,
            partition=self.shard_id,
        )
        self.epoch += 1
        self.applied.append(event)


class ReadReplica:
    """A shard replica: bootstrapped from the snapshot, fed by CDC."""

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        engine: Connector,
        broker: Broker,
        *,
        topic: str = CDC_TOPIC,
    ) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.engine = engine
        self.consumer = Consumer(
            broker,
            group=f"replica-{shard_id}-{replica_id}",
            topic=topic,
            partitions=[shard_id],
        )
        self.events_applied = 0

    def staleness(self) -> int:
        """Committed-but-unapplied CDC records (the replica's lag)."""
        return self.consumer.lag()

    def catch_up(self, budget: int = 0) -> int:
        """Drain CDC until lag <= ``budget``; returns events applied.

        ``budget`` is the bounded-staleness knob: 0 demands a fully fresh
        replica, ``k`` tolerates up to ``k`` unapplied records.  The poll
        and apply work lands on whatever ledger is active — a read that
        demands freshness pays for it.
        """
        applied = 0
        while self.consumer.lag() > budget:
            for record in self.consumer.poll():
                self.engine.apply_update(record.value)
                applied += 1
            self.consumer.commit()
        self.events_applied += applied
        return applied
