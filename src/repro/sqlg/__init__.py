"""Sqlg: the TinkerPop3 API implemented over the relational engine.

Every provider call becomes one or more SQL statements against the
row-store database — the paper's "translating graph queries into multiple
small requests eliminates optimization opportunities" pathology, measured
directly here because each statement pays the client round trip and the
executor runs per-statement plans instead of one joined plan.
"""

from repro.sqlg.graph import SqlgProvider

__all__ = ["SqlgProvider"]
