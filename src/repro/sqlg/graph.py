"""The Sqlg provider: property graph emulated over SQL tables.

Schema mapping (as in real Sqlg): one table per vertex label
(``v_<label>``) and one per edge label (``e_<label>`` with ``out_id`` /
``in_id`` endpoint columns plus endpoint label columns, since SNB
messages may be posts or comments).  Vertex ids are the SNB global ids.

Every SPI call issues SQL through the embedded database *and* charges a
``client_rtt`` — Sqlg runs inside the Gremlin Server and talks JDBC to
Postgres, so each small request pays the wire.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

from repro.relational.engine import Database
from repro.simclock.ledger import charge
from repro.tinkerpop.structure import GraphProvider

_SQL_TYPES = {int: "BIGINT", str: "TEXT", float: "FLOAT", bool: "BOOL"}


class SqlgProvider(GraphProvider):
    name = "sqlg"

    def __init__(self, db: Database | None = None) -> None:
        self.db = db or Database(
            "row", name="sqlg-postgres", cache_statements=False
        )
        self._vertex_schemas: dict[str, list[str]] = {}
        self._edge_schemas: dict[str, list[str]] = {}
        self._vertex_label_cache: dict[Any, str] = {}

    # -- schema ------------------------------------------------------------------

    def define_vertex_label(
        self, label: str, columns: Mapping[str, type]
    ) -> None:
        """Declare a vertex table (Sqlg requires schemas up front)."""
        if label in self._vertex_schemas:
            return
        extra = {name: t for name, t in columns.items() if name != "id"}
        cols = ", ".join(
            f"{name} {_SQL_TYPES[ctype]}" for name, ctype in extra.items()
        )
        suffix = f", {cols}" if cols else ""
        self.db.execute(
            f"CREATE TABLE v_{label} (id BIGINT PRIMARY KEY{suffix})"
        )
        self._vertex_schemas[label] = ["id", *extra.keys()]

    def define_edge_label(
        self, label: str, columns: Mapping[str, type] | None = None
    ) -> None:
        if label in self._edge_schemas:
            return
        columns = columns or {}
        extra = "".join(
            f", {name} {_SQL_TYPES[ctype]}" for name, ctype in columns.items()
        )
        self.db.execute(
            f"CREATE TABLE e_{label} (eid BIGINT PRIMARY KEY, "
            f"out_id BIGINT, in_id BIGINT, out_label TEXT, in_label TEXT"
            f"{extra})"
        )
        self.db.execute(f"CREATE INDEX ON e_{label} (out_id) USING HASH")
        self.db.execute(f"CREATE INDEX ON e_{label} (in_id) USING HASH")
        self._edge_schemas[label] = [
            "eid", "out_id", "in_id", "out_label", "in_label",
            *columns.keys(),
        ]

    def create_prop_index(self, label: str, key: str) -> None:
        self.db.execute(f"CREATE INDEX ON v_{label} ({key}) USING HASH")

    # -- SPI: reads -----------------------------------------------------------------

    def vertices(self, label: str | None = None) -> Iterator[Any]:
        labels = [label] if label else list(self._vertex_schemas)
        for vlabel in labels:
            charge("client_rtt")
            for (vid,) in self.db.query(f"SELECT id FROM v_{vlabel}"):
                yield (vlabel, vid)

    def vertex_label(self, vid: Any) -> str:
        return vid[0]

    def vertex_props(self, vid: Any) -> dict[str, Any]:
        label, raw_id = vid
        charge("client_rtt")
        rows = self.db.query(
            f"SELECT * FROM v_{label} WHERE id = ?", (raw_id,)
        )
        if not rows:
            raise KeyError(f"no vertex {vid}")
        return {
            col: value
            for col, value in zip(self._vertex_schemas[label], rows[0])
            if value is not None
        }

    def edge_props(self, eid: Any) -> dict[str, Any]:
        label, raw_id = eid
        charge("client_rtt")
        rows = self.db.query(
            f"SELECT * FROM e_{label} WHERE eid = ?", (raw_id,)
        )
        if not rows:
            raise KeyError(f"no edge {eid}")
        skip = {"eid", "out_id", "in_id", "out_label", "in_label"}
        return {
            col: value
            for col, value in zip(self._edge_schemas[label], rows[0])
            if col not in skip and value is not None
        }

    def edge_label(self, eid: Any) -> str:
        return eid[0]

    def edge_endpoints(self, eid: Any) -> tuple[Any, Any]:
        label, raw_id = eid
        charge("client_rtt")
        rows = self.db.query(
            f"SELECT out_id, in_id, out_label, in_label FROM e_{label} "
            f"WHERE eid = ?",
            (raw_id,),
        )
        if not rows:
            raise KeyError(f"no edge {eid}")
        out_id, in_id, out_label, in_label = rows[0]
        return (out_label, out_id), (in_label, in_id)

    def adjacent(
        self, vid: Any, direction: str, label: str | None
    ) -> Iterator[tuple[Any, Any]]:
        _vlabel, raw_id = vid
        edge_labels = [label] if label else list(self._edge_schemas)
        for elabel in edge_labels:
            if direction in ("out", "both"):
                charge("client_rtt")
                for eid, other_id, other_label in self.db.query(
                    f"SELECT eid, in_id, in_label FROM e_{elabel} "
                    f"WHERE out_id = ?",
                    (raw_id,),
                ):
                    yield (elabel, eid), (other_label, other_id)
            if direction in ("in", "both"):
                charge("client_rtt")
                for eid, other_id, other_label in self.db.query(
                    f"SELECT eid, out_id, out_label FROM e_{elabel} "
                    f"WHERE in_id = ?",
                    (raw_id,),
                ):
                    yield (elabel, eid), (other_label, other_id)

    def lookup(self, label: str, key: str, value: Any) -> list[Any]:
        charge("client_rtt")
        rows = self.db.query(
            f"SELECT id FROM v_{label} WHERE {key} = ?", (value,)
        )
        return [(label, vid) for (vid,) in rows]

    def has_lookup_index(self, label: str, key: str) -> bool:
        if label not in self._vertex_schemas:
            return False
        return self.db.catalog.table(f"v_{label}").has_index(key)

    # -- SPI: writes -------------------------------------------------------------------

    def create_vertex(self, label: str, props: dict[str, Any]) -> Any:
        schema = self._vertex_schemas[label]
        values = [props.get(col) for col in schema]
        placeholders = ", ".join("?" for _ in schema)
        charge("client_rtt")
        self.db.execute(
            f"INSERT INTO v_{label} VALUES ({placeholders})", values
        )
        return (label, props["id"])

    _next_eid = 0

    def create_edge(
        self, label: str, out_vid: Any, in_vid: Any, props: dict[str, Any]
    ) -> Any:
        schema = self._edge_schemas[label]
        SqlgProvider._next_eid += 1
        eid = SqlgProvider._next_eid
        row = {
            "eid": eid,
            "out_id": out_vid[1],
            "in_id": in_vid[1],
            "out_label": out_vid[0],
            "in_label": in_vid[0],
            **props,
        }
        values = [row.get(col) for col in schema]
        placeholders = ", ".join("?" for _ in schema)
        charge("client_rtt")
        self.db.execute(
            f"INSERT INTO e_{label} VALUES ({placeholders})", values
        )
        return (label, eid)

    def set_vertex_prop(self, vid: Any, key: str, value: Any) -> None:
        label, raw_id = vid
        charge("client_rtt")
        self.db.execute(
            f"UPDATE v_{label} SET {key} = ? WHERE id = ?", (value, raw_id)
        )

    # -- stats ----------------------------------------------------------------------------

    def size_bytes(self) -> int:
        return self.db.size_bytes()
