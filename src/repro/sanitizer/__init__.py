"""Dynamic analysis: race detection + data-integrity audits.

The dynamic-analysis sibling of :mod:`repro.analysis`.  The engines
import only :mod:`repro.sanitizer.runtime` (a ``None``-guarded global
hook — zero overhead when sanitizing is off); the heavier passes
(:mod:`~repro.sanitizer.race`, :mod:`~repro.sanitizer.integrity`,
:mod:`~repro.sanitizer.faults`, :mod:`~repro.sanitizer.harness`) are
imported lazily by the CLI so instrumented engine modules never pull
them in — that keeps the import graph acyclic (the integrity auditors
import the engines).
"""

from repro.sanitizer.events import Event, VectorClock
from repro.sanitizer.runtime import TraceCollector, tracing, worker

__all__ = [
    "Event",
    "VectorClock",
    "TraceCollector",
    "tracing",
    "worker",
]
