"""Seeded faults proving the sanitizer actually fires.

Each mode plants exactly one class of corruption — chosen so the run
reports *only* that mode's QA code — against whichever sanitize target
the connector exposes:

==================  =======  =========================================
mode                expects  fault planted
==================  =======  =========================================
unlocked-write      QA601    two rogue workers mutate one resource
                             with no locks and no ordering
lock-across-commit  QA602    a lock acquired after its transaction
                             committed, never released
unsorted-locks      QA501,   two overlapping transactions take shared
                    QA502    locks on the same pair in opposite orders
lost-update         QA603    two overlapping transactions read-then-
                             write one row; the second write clobbers
                             the first (every access lock-protected,
                             so no QA601 — the *history* is the bug)
non-repeatable-read QA604    one transaction reads a row twice without
                             snapshot protection; a foreign commit
                             lands in between
write-skew          QA605    two snapshot transactions each read what
                             the other writes, then both commit
dangling-edge       QA701    an edge/FK row pointing at entities that
                             don't exist
index-skew          QA702    an index entry surgically removed (or a
                             bogus one planted) behind the store's back
skip-invalidation   QA703    an edge insert with the cache-invalidation
                             hook disabled, leaving a stale neighborhood
skip-fsync          QA704    a modification appended to the WAL but
                             never made durable by a commit
==================  =======  =========================================

``applicable_modes`` reports which modes a connector supports given its
target kinds (e.g. ``skip-invalidation`` needs a property-graph store;
lock modes need an engine with a lock manager).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.graphdb.store import Direction, GraphStore
from repro.rdf.triples import TripleStore
from repro.relational.engine import Database
from repro.sanitizer import runtime
from repro.titan.graph import TitanProvider, _encode_value, _pad
from repro.txn import oracle
from repro.txn.locks import LockMode

#: ids far above anything the datagen emits at test scale
_FRESH = 999_999_001


@dataclass(frozen=True)
class Fault:
    name: str
    expected: frozenset[str]
    #: target kinds the mode can corrupt, in dispatch priority order
    kinds: tuple[str, ...]


FAULTS: dict[str, Fault] = {
    "unlocked-write": Fault(
        "unlocked-write",
        frozenset({"QA601"}),
        ("sql", "sqlg", "graph", "rdf", "titan"),
    ),
    "lock-across-commit": Fault(
        "lock-across-commit", frozenset({"QA602"}), ("sql", "sqlg")
    ),
    "unsorted-locks": Fault(
        "unsorted-locks",
        frozenset({"QA501", "QA502"}),
        ("sql", "sqlg"),
    ),
    "lost-update": Fault("lost-update", frozenset({"QA603"}), ("sql",)),
    "non-repeatable-read": Fault(
        "non-repeatable-read", frozenset({"QA604"}), ("sql",)
    ),
    "write-skew": Fault("write-skew", frozenset({"QA605"}), ("sql",)),
    "dangling-edge": Fault(
        "dangling-edge",
        frozenset({"QA701"}),
        ("sql", "sqlg", "graph", "rdf", "titan"),
    ),
    "index-skew": Fault(
        "index-skew",
        frozenset({"QA702"}),
        ("sql", "sqlg", "graph", "rdf", "titan"),
    ),
    "skip-invalidation": Fault(
        "skip-invalidation", frozenset({"QA703"}), ("graph",)
    ),
    "skip-fsync": Fault(
        "skip-fsync", frozenset({"QA704"}), ("wal", "sql", "sqlg")
    ),
}


def applicable_modes(targets: dict[str, Any]) -> list[str]:
    """Fault modes the connector's targets support, in table order."""
    return [
        name
        for name, fault in FAULTS.items()
        if any(kind in targets for kind in fault.kinds)
    ]


def inject(mode: str, targets: dict[str, Any]) -> None:
    """Plant the fault into the highest-priority applicable target."""
    fault = FAULTS[mode]
    for kind in fault.kinds:
        target = targets.get(kind)
        if target is not None:
            _INJECTORS[(mode, kind)](target)
            return
    raise ValueError(
        f"fault {mode!r} is not applicable to targets "
        f"{sorted(targets)}"
    )


# -- helpers ------------------------------------------------------------------


def _first_pk(db: Database, table_name: str) -> Any:
    table = db.catalog.table(table_name)
    pos = table.column_position(table.primary_key or "id")
    for _handle, row in table.scan():
        return row[pos]
    raise LookupError(f"table {table_name} is empty")


# -- unlocked-write -> QA601 --------------------------------------------------


def _unlocked_write_sql(db: Database) -> None:
    # a valid personid keeps the FK audit silent; the final commit
    # keeps the replay audit silent — only the race remains
    pid = _first_pk(db, "person")
    table = db.catalog.table("person_email")
    with runtime.worker("rogue-1"):
        handle = table.insert((pid, "sanitize@example.org"))
    with runtime.worker("rogue-2"):
        table.update(handle, {"email": "sanitize2@example.org"})
    db.wal.commit()


def _unlocked_write_sqlg(db: Database) -> None:
    pid = _first_pk(db, "v_person")
    table = db.catalog.table("e_knows")
    row: list[Any] = [None] * len(table.column_names)
    row[table.column_position("eid")] = _FRESH
    row[table.column_position("out_id")] = pid
    row[table.column_position("in_id")] = pid
    row[table.column_position("out_label")] = "person"
    row[table.column_position("in_label")] = "person"
    with runtime.worker("rogue-1"):
        handle = table.insert(tuple(row))
    with runtime.worker("rogue-2"):
        table.update(handle, {})
    db.wal.commit()


def _unlocked_write_graph(store: GraphStore) -> None:
    with runtime.worker("rogue-1"):
        node_id = store.create_node((), {"sanitizeProbe": 0})
    with runtime.worker("rogue-2"):
        store.set_node_prop(node_id, "sanitizeProbe", 1)


def _unlocked_write_rdf(store: TripleStore) -> None:
    # a property predicate: the dangling-endpoint audit only checks
    # edge-predicate objects, and direct adds don't touch the WAL
    with runtime.worker("rogue-1"):
        store.add("sn:sanitizeProbe", "snb:firstName", "alpha")
    with runtime.worker("rogue-2"):
        store.add("sn:sanitizeProbe", "snb:firstName", "beta")


def _unlocked_write_titan(provider: TitanProvider) -> None:
    with runtime.worker("rogue-1"):
        provider.create_vertex("person", {"id": _FRESH})
    with runtime.worker("rogue-2"):
        provider.set_vertex_prop(_FRESH, "sanitizeProbe", 1)


# -- lock-across-commit -> QA602 ----------------------------------------------


def _lock_across_commit(db: Database) -> None:
    txn = db.txns.begin()
    txn.commit()
    db.txns.locks.acquire(
        txn.txn_id, ("sanitize", "leak"), LockMode.EXCLUSIVE
    )


# -- unsorted-locks -> QA501 + QA502 ------------------------------------------


def _unsorted_locks(db: Database) -> None:
    # shared locks on synthetic resources: the two transactions overlap
    # and close an order cycle without ever conflicting, and the aborts
    # release everything so QA602 stays silent.  The order is data-
    # driven: the *static* QA501 pass must not flag this deliberate
    # fault — only the runtime detector observing the trace should.
    locks = db.txns.locks
    ordered = [("sanitize", "a"), ("sanitize", "b")]
    t1 = db.txns.begin()
    t2 = db.txns.begin()
    for txn, order in ((t1, ordered), (t2, list(reversed(ordered)))):
        for resource in order:
            locks.acquire(txn.txn_id, resource, LockMode.SHARED)
    t1.abort()
    t2.abort()


# -- snapshot anomalies -> QA603 / QA604 / QA605 ------------------------------
#
# Every access below is individually lock-protected, and sequential
# holds of one lock chain the accesses with happens-before edges — the
# race detector stays silent.  The *transactions* still interleave
# non-serializably (early lock release / snapshot reads), which only
# the history audit can see.


def _anomaly_row(db: Database, email: str) -> Any:
    """A fresh person_email row inserted under an exclusive lock."""
    pid = _first_pk(db, "person")
    table = db.catalog.table("person_email")
    with runtime.worker("anomaly-0"):
        setup = db.txns.begin()
        db.txns.locks.acquire(
            setup.txn_id, ("anomaly", email), LockMode.EXCLUSIVE
        )
        handle = table.insert((pid, email))
        setup.commit()
    return handle


def _lost_update(db: Database) -> None:
    table = db.catalog.table("person_email")
    lock = ("anomaly", "anomaly.r0@example.org")
    handle = _anomaly_row(db, "anomaly.r0@example.org")
    with runtime.worker("anomaly-1"):
        t1 = db.txns.begin()
        with oracle.read_view("snapshot"):
            table.fetch(handle)
    with runtime.worker("anomaly-2"):
        t2 = db.txns.begin()
        with oracle.read_view("snapshot"):
            table.fetch(handle)
        db.txns.locks.acquire(t2.txn_id, lock, LockMode.EXCLUSIVE)
        table.update(handle, {"email": "anomaly.r2@example.org"})
        t2.commit()
    with runtime.worker("anomaly-1"):
        # t1 updates from its stale snapshot: t2's committed write is
        # overwritten without ever having been observed
        db.txns.locks.acquire(t1.txn_id, lock, LockMode.EXCLUSIVE)
        table.update(handle, {"email": "anomaly.r1@example.org"})
        t1.commit()


def _non_repeatable_read(db: Database) -> None:
    table = db.catalog.table("person_email")
    lock = ("anomaly", "anomaly.n0@example.org")
    handle = _anomaly_row(db, "anomaly.n0@example.org")
    with runtime.worker("anomaly-1"):
        t1 = db.txns.begin()
        db.txns.locks.acquire(t1.txn_id, lock, LockMode.SHARED)
        table.fetch(handle)  # bare read: no snapshot protection
        db.txns.locks.release_all(t1.txn_id)  # early release: the bug
    with runtime.worker("anomaly-2"):
        t2 = db.txns.begin()
        db.txns.locks.acquire(t2.txn_id, lock, LockMode.EXCLUSIVE)
        table.update(handle, {"email": "anomaly.n2@example.org"})
        t2.commit()
    with runtime.worker("anomaly-1"):
        db.txns.locks.acquire(t1.txn_id, lock, LockMode.SHARED)
        table.fetch(handle)  # same transaction, different answer
        t1.commit()


def _write_skew(db: Database) -> None:
    table = db.catalog.table("person_email")
    backup_lock = ("anomaly", "anomaly.b0@example.org")
    on_call_lock = ("anomaly", "anomaly.a0@example.org")
    on_call = _anomaly_row(db, "anomaly.a0@example.org")
    backup = _anomaly_row(db, "anomaly.b0@example.org")
    with runtime.worker("anomaly-1"):
        t1 = db.txns.begin()
        with oracle.read_view("snapshot"):
            table.fetch(on_call)
    with runtime.worker("anomaly-2"):
        t2 = db.txns.begin()
        with oracle.read_view("snapshot"):
            table.fetch(backup)
    with runtime.worker("anomaly-1"):
        db.txns.locks.acquire(t1.txn_id, backup_lock, LockMode.EXCLUSIVE)
        table.update(backup, {"email": "anomaly.b1@example.org"})
        t1.commit()
    with runtime.worker("anomaly-2"):
        db.txns.locks.acquire(t2.txn_id, on_call_lock, LockMode.EXCLUSIVE)
        table.update(on_call, {"email": "anomaly.a2@example.org"})
        t2.commit()


# -- dangling-edge -> QA701 ---------------------------------------------------


def _dangling_edge_sql(db: Database) -> None:
    db.catalog.table("knows").insert((_FRESH, _FRESH + 1, 0))
    db.wal.commit()


def _dangling_edge_sqlg(db: Database) -> None:
    table = db.catalog.table("e_knows")
    row: list[Any] = [None] * len(table.column_names)
    row[table.column_position("eid")] = _FRESH + 1
    row[table.column_position("out_id")] = _FRESH
    row[table.column_position("in_id")] = _FRESH + 1
    row[table.column_position("out_label")] = "person"
    row[table.column_position("in_label")] = "person"
    table.insert(tuple(row))
    db.wal.commit()


def _dangling_edge_graph(store: GraphStore) -> None:
    start = store.create_node((), {})
    end = store.create_node((), {})
    store.create_rel("knows", start, end, {})
    # record-level corruption: delete the endpoint behind the API's
    # still-has-relationships check
    store._nodes[end].deleted = True
    store.node_count -= 1


def _dangling_edge_rdf(store: TripleStore) -> None:
    store.add("sn:sanitizeSrc", "snb:knows", "sn:sanitizeGhost")


def _dangling_edge_titan(provider: TitanProvider) -> None:
    provider.create_edge("knows", _FRESH, _FRESH + 1, {})


# -- index-skew -> QA702 ------------------------------------------------------


def _index_skew_sql(db: Database) -> None:
    _drop_pk_index_entry(db, "person")


def _index_skew_sqlg(db: Database) -> None:
    _drop_pk_index_entry(db, "v_person")


def _drop_pk_index_entry(db: Database, table_name: str) -> None:
    table = db.catalog.table(table_name)
    pk = table.primary_key
    assert pk is not None
    pos = table.column_position(pk)
    for handle, row in table.scan():
        table._indexes[pk].delete(row[pos], handle)
        return
    raise LookupError(f"table {table_name} is empty")


def _index_skew_graph(store: GraphStore) -> None:
    for label, ids in store._label_index.items():
        for node_id in sorted(ids):
            ids.discard(node_id)
            return
    raise LookupError("label index is empty")


def _index_skew_rdf(store: TripleStore) -> None:
    # skip rdf:type rows: the dangling-endpoint audit derives its
    # typed-entity set through the POS index, and skewing a type triple
    # would cascade into QA701s
    type_id = store.lookup_term("rdf:type")
    for (s_id, p_id, o_id), _ in store._spo.items():
        if p_id == type_id:
            continue
        store._pos.delete((p_id, o_id, s_id))
        return
    raise LookupError("triple store has no non-type triples")


def _index_skew_titan(provider: TitanProvider) -> None:
    provider._put(
        f"i:person:id:{_encode_value(_FRESH)}:{_pad(_FRESH)}", b""
    )


# -- skip-invalidation -> QA703 -----------------------------------------------


def _skip_invalidation(store: GraphStore) -> None:
    if store._neighborhood_cache is None:
        store.enable_neighborhood_cache()
    start = store.create_node((), {})
    end = store.create_node((), {})
    # prime the cache, then insert an edge with invalidation disabled
    store.neighbors(start, "knows", Direction.BOTH)
    store._invalidate_neighborhoods = (  # type: ignore[method-assign]
        lambda members: None
    )
    try:
        store.create_rel("knows", start, end, {})
    finally:
        del store.__dict__["_invalidate_neighborhoods"]


# -- skip-fsync -> QA704 ------------------------------------------------------


def _skip_fsync_wal(wal: Any) -> None:
    wal.append(b"sanitize: lost update")


def _skip_fsync_sql(db: Database) -> None:
    pid = _first_pk(db, "person")
    db.catalog.table("person_email").insert((pid, "lost@example.org"))
    # no commit: the record is appended but never durable


def _skip_fsync_sqlg(db: Database) -> None:
    table = db.catalog.table("v_person")
    pos = table.column_position(table.primary_key or "id")
    for _handle, row in table.scan():
        fresh = list(row)
        fresh[pos] = _FRESH + 2
        table.insert(tuple(fresh))
        return
    raise LookupError("table v_person is empty")


_INJECTORS: dict[tuple[str, str], Any] = {
    ("unlocked-write", "sql"): _unlocked_write_sql,
    ("unlocked-write", "sqlg"): _unlocked_write_sqlg,
    ("unlocked-write", "graph"): _unlocked_write_graph,
    ("unlocked-write", "rdf"): _unlocked_write_rdf,
    ("unlocked-write", "titan"): _unlocked_write_titan,
    ("lock-across-commit", "sql"): _lock_across_commit,
    ("lock-across-commit", "sqlg"): _lock_across_commit,
    ("unsorted-locks", "sql"): _unsorted_locks,
    ("unsorted-locks", "sqlg"): _unsorted_locks,
    ("lost-update", "sql"): _lost_update,
    ("non-repeatable-read", "sql"): _non_repeatable_read,
    ("write-skew", "sql"): _write_skew,
    ("dangling-edge", "sql"): _dangling_edge_sql,
    ("dangling-edge", "sqlg"): _dangling_edge_sqlg,
    ("dangling-edge", "graph"): _dangling_edge_graph,
    ("dangling-edge", "rdf"): _dangling_edge_rdf,
    ("dangling-edge", "titan"): _dangling_edge_titan,
    ("index-skew", "sql"): _index_skew_sql,
    ("index-skew", "sqlg"): _index_skew_sqlg,
    ("index-skew", "graph"): _index_skew_graph,
    ("index-skew", "rdf"): _index_skew_rdf,
    ("index-skew", "titan"): _index_skew_titan,
    ("skip-invalidation", "graph"): _skip_invalidation,
    ("skip-fsync", "wal"): _skip_fsync_wal,
    ("skip-fsync", "sql"): _skip_fsync_sql,
    ("skip-fsync", "sqlg"): _skip_fsync_sqlg,
}
