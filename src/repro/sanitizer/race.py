"""Lockset + happens-before race detection over a recorded trace.

The detector replays the event list produced by
:class:`repro.sanitizer.runtime.TraceCollector` and reports:

QA601
    two conflicting accesses (write/write, or an unprotected read
    against a write) to the same resource from different workers whose
    vector clocks are concurrent and whose locksets are disjoint — the
    Eraser candidate-lockset rule.  Reads tagged ``mode="snapshot"``
    ran against an immutable MVCC version and are immune by
    construction, so only bare (read-committed) reads participate.
QA602
    a lock still held at end of trace: either the transaction
    committed without releasing it (held across the commit boundary)
    or it was simply never released.
QA501 / QA502
    re-emitted from the *runtime* acquisition order when it contradicts
    the statically verified sorted order.  Both are gated on the
    transaction's lock-holding interval overlapping another lock
    holder's — a serial history cannot deadlock, so clean single-writer
    runs stay silent no matter what order their locks arrive in.

Happens-before edges come from the locks themselves: releasing a lock
publishes the releasing worker's clock, and the next acquire of the
same resource joins it into the acquiring worker's clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, SourceLocation, make
from repro.sanitizer.events import Event, VectorClock

#: every runtime diagnostic points at the synthetic "runtime" dialect
_LOC = "runtime"


@dataclass
class _TxnState:
    worker: str = ""
    held: dict[str, str] = field(default_factory=dict)  # resource -> mode
    #: resources in first-grant order (for QA501/QA502)
    grant_order: list[str] = field(default_factory=list)
    first_grant_seq: int | None = None
    last_release_seq: int | None = None
    committed: bool = False
    aborted: bool = False


@dataclass(frozen=True)
class _Access:
    worker: str
    txn_id: int
    clock: VectorClock
    lockset: frozenset[str]
    seq: int


def _loc(operation: str) -> SourceLocation:
    return SourceLocation(_LOC, operation)


def analyze_trace(events: list[Event]) -> list[Diagnostic]:
    """Replay ``events`` and return every runtime diagnostic."""
    clocks: dict[str, VectorClock] = {}
    #: clock published by the latest release of each lock resource
    release_clocks: dict[str, VectorClock] = {}
    txns: dict[int, _TxnState] = {}
    #: the txn each worker currently has open (storage-level write
    #: events don't know their transaction; the worker does)
    open_txn: dict[str, int] = {}
    #: per resource: the write / unprotected-read accesses seen so far
    accesses: dict[str, list[_Access]] = {}
    read_accesses: dict[str, list[_Access]] = {}
    diagnostics: list[Diagnostic] = []
    reported_601: set[tuple[str, frozenset[str], str]] = set()
    last_seq = events[-1].seq if events else 0

    def report_601(
        prior: _Access, current: _Access, resource: str, kind: str
    ) -> None:
        if prior.worker == current.worker:
            return
        if prior.clock <= current.clock:
            return  # ordered: release/acquire edge between them
        if prior.lockset & current.lockset:
            return  # a common lock serialises them
        pair = frozenset((prior.worker, current.worker))
        key = (resource, pair, kind)
        if key in reported_601:
            return
        reported_601.add(key)
        diagnostics.append(
            make(
                "QA601",
                f"resource {resource} {kind} by "
                f"{prior.worker} (locks "
                f"{sorted(prior.lockset) or 'none'}) and "
                f"{current.worker} (locks "
                f"{sorted(current.lockset) or 'none'}) with no "
                f"happens-before edge",
                _loc("race-detector"),
            )
        )

    for ev in events:
        clock = clocks.get(ev.worker, VectorClock()).tick(ev.worker)
        txn = txns.setdefault(ev.txn_id, _TxnState(worker=ev.worker))
        txn.worker = ev.worker

        if ev.kind == "begin":
            open_txn[ev.worker] = ev.txn_id
        elif ev.kind in ("commit", "abort") and (
            open_txn.get(ev.worker) == ev.txn_id
        ):
            del open_txn[ev.worker]

        if ev.kind == "acquire":
            if ev.resource in release_clocks:
                clock = clock.join(release_clocks[ev.resource])
            if ev.resource not in txn.held:
                txn.held[ev.resource] = ev.mode
                txn.grant_order.append(ev.resource)
                if txn.first_grant_seq is None:
                    txn.first_grant_seq = ev.seq
        elif ev.kind == "release":
            txn.held.pop(ev.resource, None)
            release_clocks[ev.resource] = clock
            txn.last_release_seq = ev.seq
        elif ev.kind == "commit":
            txn.committed = True
        elif ev.kind == "abort":
            txn.aborted = True
        elif ev.kind == "write":
            owner = txns.get(open_txn.get(ev.worker, ev.txn_id), txn)
            lockset = frozenset(owner.held)
            current = _Access(ev.worker, ev.txn_id, clock, lockset, ev.seq)
            for prior in accesses.setdefault(ev.resource, []):
                report_601(prior, current, ev.resource, "written")
            for prior in read_accesses.get(ev.resource, ()):
                report_601(prior, current, ev.resource, "read/written")
            accesses[ev.resource].append(current)
        elif ev.kind == "read" and ev.mode != "snapshot":
            # a bare read races any concurrent unserialised write;
            # snapshot-mode reads observe an immutable version instead
            owner = txns.get(open_txn.get(ev.worker, ev.txn_id), txn)
            lockset = frozenset(owner.held)
            current = _Access(ev.worker, ev.txn_id, clock, lockset, ev.seq)
            for prior in accesses.get(ev.resource, ()):
                report_601(prior, current, ev.resource, "read/written")
            read_accesses.setdefault(ev.resource, []).append(current)

        clocks[ev.worker] = clock

    # -- QA602: locks still held at end of trace ----------------------
    for txn_id, txn in sorted(txns.items()):
        for resource in sorted(txn.held):
            fate = (
                "held across its commit boundary"
                if txn.committed
                else "never released"
            )
            diagnostics.append(
                make(
                    "QA602",
                    f"txn {txn_id} ({txn.worker}): lock on {resource} "
                    f"{fate}",
                    _loc("race-detector"),
                )
            )

    diagnostics.extend(_order_diagnostics(txns, last_seq))
    return diagnostics


def _interval(txn: _TxnState, last_seq: int) -> tuple[int, int] | None:
    """The seq span during which ``txn`` held at least one lock."""
    if txn.first_grant_seq is None:
        return None
    end = txn.last_release_seq
    return (txn.first_grant_seq, last_seq if end is None else end)


def _overlaps(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


def _order_diagnostics(
    txns: dict[int, _TxnState], last_seq: int
) -> list[Diagnostic]:
    """Runtime QA501 (opposite-order pairs) and QA502 (unsorted
    acquisition), both gated on interval overlap."""
    diagnostics: list[Diagnostic] = []
    holders = [
        (tid, txn, iv)
        for tid, txn in sorted(txns.items())
        if (iv := _interval(txn, last_seq)) is not None
    ]
    reported_501: set[frozenset[str]] = set()
    flagged_502: set[int] = set()

    for i, (tid1, txn1, iv1) in enumerate(holders):
        for tid2, txn2, iv2 in holders[i + 1:]:
            if not _overlaps(iv1, iv2):
                continue
            # QA501: the two txns acquire a shared resource pair in
            # opposite orders while both hold locks concurrently.
            pos1 = {r: k for k, r in enumerate(txn1.grant_order)}
            pos2 = {r: k for k, r in enumerate(txn2.grant_order)}
            shared = sorted(set(pos1) & set(pos2))
            for a in range(len(shared)):
                for b in range(a + 1, len(shared)):
                    ra, rb = shared[a], shared[b]
                    if (pos1[ra] < pos1[rb]) != (pos2[ra] < pos2[rb]):
                        pair = frozenset((ra, rb))
                        if pair in reported_501:
                            continue
                        reported_501.add(pair)
                        diagnostics.append(
                            make(
                                "QA501",
                                f"txns {tid1} and {tid2} acquired "
                                f"{ra} and {rb} in opposite orders "
                                f"while holding locks concurrently",
                                _loc("lock-order"),
                            )
                        )
            # QA502: unsorted acquisition inside an overlapping txn
            for tid, txn in ((tid1, txn1), (tid2, txn2)):
                if tid in flagged_502:
                    continue
                if txn.grant_order != sorted(txn.grant_order):
                    flagged_502.add(tid)
                    diagnostics.append(
                        make(
                            "QA502",
                            f"txn {tid} ({txn.worker}) acquired locks "
                            f"out of sorted order: "
                            f"{txn.grant_order}",
                            _loc("lock-order"),
                        )
                    )
    return diagnostics
