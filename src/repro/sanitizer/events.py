"""Trace events and vector clocks for the dynamic sanitizer.

The instrumented engines (see :mod:`repro.sanitizer.runtime`) emit a
flat, ordered list of :class:`Event` records.  The race detector in
:mod:`repro.sanitizer.race` replays that list, maintaining one
:class:`VectorClock` per worker to decide whether two accesses are
ordered (happens-before) or concurrent.

Events are deliberately tiny and immutable: a run of the Figure 3
harness at the test scale produces a few thousand of them, and the
detector never mutates the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

#: event kinds, in the order they appear in a typical transaction
KINDS = ("begin", "acquire", "read", "write", "commit", "abort", "release")


@dataclass(frozen=True)
class Event:
    """One instrumented action.

    ``resource`` is the ``repr`` of the engine-level resource (a
    ``(table, key)`` lock tuple, a ``("node", id)`` write target, ...)
    so traces stay hashable and printable regardless of what the
    engines lock.  ``mode`` is ``"S"``/``"X"`` for lock events,
    ``"snapshot"`` for MVCC snapshot reads (immune to read/write races
    by construction), and ``""`` otherwise.
    """

    seq: int
    kind: str
    worker: str
    txn_id: int
    resource: str = ""
    mode: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")


class VectorClock:
    """An immutable vector clock over worker names.

    Zero components are normalised away, so two clocks are equal iff
    their non-zero components are — this keeps ``tick``/``join`` cheap
    and makes :meth:`__le__` a genuine partial order (reflexive,
    antisymmetric, transitive; see the property test in
    ``tests/test_sanitizer_race.py``).
    """

    __slots__ = ("_c",)

    def __init__(self, components: Mapping[str, int] | None = None) -> None:
        self._c: dict[str, int] = {
            k: v for k, v in (components or {}).items() if v > 0
        }

    def tick(self, worker: str) -> VectorClock:
        c = dict(self._c)
        c[worker] = c.get(worker, 0) + 1
        return VectorClock(c)

    def join(self, other: VectorClock) -> VectorClock:
        c = dict(self._c)
        for k, v in other._c.items():
            if v > c.get(k, 0):
                c[k] = v
        return VectorClock(c)

    def __le__(self, other: VectorClock) -> bool:
        return all(v <= other._c.get(k, 0) for k, v in self._c.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._c == other._c

    def __hash__(self) -> int:
        return hash(frozenset(self._c.items()))

    def concurrent(self, other: VectorClock) -> bool:
        """Neither clock happens-before the other."""
        return not (self <= other) and not (other <= self)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{k}={v}" for k, v in sorted(self._c.items())
        )
        return f"VC({inner})"
