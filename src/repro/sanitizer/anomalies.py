"""Snapshot-anomaly audit over a traced transaction history.

The race detector (:mod:`repro.sanitizer.race`) proves individual
accesses are synchronized; this pass proves the *transactions* compose
into a serializable history.  The two are independent: a history where
every access is lock-protected and lock-ordered can still be
non-serializable — early lock release and snapshot reads both produce
exactly that shape — so a clean QA601 report says nothing about QA60x.

QA603  lost update
    two overlapping committed transactions both read-then-write one
    resource, and the second writer's update lands without having
    observed the first's (its read predates the foreign write).
QA604  non-repeatable read
    one transaction reads a resource twice without snapshot protection
    and a foreign committed write lands between the reads.  Reads
    tagged ``mode="snapshot"`` are repeatable by construction and
    exempt — this is the read-committed anomaly MVCC snapshots remove.
QA605  write skew
    each of two overlapping committed transactions reads what the
    other writes, and both reads predate both writes: no serial order
    explains what either transaction saw.  This is *the* anomaly
    snapshot isolation permits, so snapshot-mode reads participate.

Storage-level events carry ``txn_id=-1``; like the race detector, the
audit attributes them to the worker's open transaction.  Reads and
writes outside any transaction are ignored, which keeps clean
interactive runs silent: the harness has one writer applying
transactions sequentially, and sequential transactions never overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, SourceLocation, make
from repro.sanitizer.events import Event

_LOC = SourceLocation("runtime", "anomaly-audit")


@dataclass
class _Txn:
    txn_id: int
    worker: str
    begin_seq: int
    commit_seq: int | None = None
    committed: bool = False
    #: (resource, seq, mode) in trace order
    reads: list[tuple[str, int, str]] = field(default_factory=list)
    #: (resource, seq) in trace order
    writes: list[tuple[str, int]] = field(default_factory=list)

    def read_seqs(self, resource: str) -> list[int]:
        return [s for r, s, _ in self.reads if r == resource]

    def write_seqs(self, resource: str) -> list[int]:
        return [s for r, s in self.writes if r == resource]


def _collect(events: list[Event]) -> list[_Txn]:
    """Committed transactions with their attributed read/write sets."""
    txns: dict[int, _Txn] = {}
    open_txn: dict[str, int] = {}
    for ev in events:
        if ev.kind == "begin":
            txns[ev.txn_id] = _Txn(ev.txn_id, ev.worker, ev.seq)
            open_txn[ev.worker] = ev.txn_id
        elif ev.kind in ("commit", "abort"):
            txn = txns.get(ev.txn_id)
            if txn is not None:
                txn.commit_seq = ev.seq
                txn.committed = ev.kind == "commit"
            if open_txn.get(ev.worker) == ev.txn_id:
                del open_txn[ev.worker]
        elif ev.kind in ("read", "write"):
            tid = ev.txn_id if ev.txn_id != -1 else open_txn.get(ev.worker, -1)
            txn = txns.get(tid)
            if txn is None:
                continue  # outside any transaction: not a history
            if ev.kind == "read":
                txn.reads.append((ev.resource, ev.seq, ev.mode))
            else:
                txn.writes.append((ev.resource, ev.seq))
    return sorted(
        (t for t in txns.values() if t.committed and t.commit_seq is not None),
        key=lambda t: t.begin_seq,
    )


def _overlap(t1: _Txn, t2: _Txn) -> bool:
    assert t1.commit_seq is not None and t2.commit_seq is not None
    return t1.begin_seq < t2.commit_seq and t2.begin_seq < t1.commit_seq


def audit_history(events: list[Event]) -> list[Diagnostic]:
    """Replay ``events`` and report every snapshot anomaly (QA60x)."""
    committed = _collect(events)
    diagnostics: list[Diagnostic] = []

    # -- QA603: lost update -------------------------------------------
    for i, t1 in enumerate(committed):
        for t2 in committed[i + 1:]:
            if not _overlap(t1, t2):
                continue
            for victim, clobberer in ((t1, t2), (t2, t1)):
                shared = sorted(
                    {r for r, _, _ in clobberer.reads}
                    & {r for r, _ in clobberer.writes}
                    & {r for r, _, _ in victim.reads}
                    & {r for r, _ in victim.writes}
                )
                for resource in shared:
                    read = min(clobberer.read_seqs(resource))
                    write = max(clobberer.write_seqs(resource))
                    lost = [
                        s
                        for s in victim.write_seqs(resource)
                        if read < s < write
                    ]
                    if lost:
                        diagnostics.append(
                            make(
                                "QA603",
                                f"txn {clobberer.txn_id} "
                                f"({clobberer.worker}) overwrote "
                                f"{resource} without observing the "
                                f"update txn {victim.txn_id} "
                                f"({victim.worker}) committed in "
                                f"between",
                                _LOC,
                            )
                        )
                        break  # one report per direction

    # -- QA604: non-repeatable read -----------------------------------
    for txn in committed:
        flagged: set[str] = set()
        bare = [(r, s) for r, s, mode in txn.reads if mode != "snapshot"]
        for resource, first in bare:
            for other_resource, second in bare:
                if other_resource != resource or second <= first:
                    continue
                if resource in flagged:
                    continue
                for other in committed:
                    if other.txn_id == txn.txn_id:
                        continue
                    assert other.commit_seq is not None
                    if other.commit_seq >= second:
                        continue
                    if any(
                        first < s < second
                        for s in other.write_seqs(resource)
                    ):
                        flagged.add(resource)
                        diagnostics.append(
                            make(
                                "QA604",
                                f"txn {txn.txn_id} ({txn.worker}) read "
                                f"{resource} twice and txn "
                                f"{other.txn_id} ({other.worker}) "
                                f"committed a write in between",
                                _LOC,
                            )
                        )
                        break

    # -- QA605: write skew --------------------------------------------
    reported_skew: set[frozenset[int]] = set()
    for i, t1 in enumerate(committed):
        for t2 in committed[i + 1:]:
            pair = frozenset((t1.txn_id, t2.txn_id))
            if pair in reported_skew or not _overlap(t1, t2):
                continue
            t1_writes = {r for r, _ in t1.writes}
            t2_writes = {r for r, _ in t2.writes}
            crossed = sorted(
                (a, b)
                for a in {r for r, _, _ in t1.reads} & t2_writes
                for b in {r for r, _, _ in t2.reads} & t1_writes
                if a != b and a not in t1_writes and b not in t2_writes
            )
            for a, b in crossed:
                if min(t1.read_seqs(a)) < max(t2.write_seqs(a)) and min(
                    t2.read_seqs(b)
                ) < max(t1.write_seqs(b)):
                    reported_skew.add(pair)
                    diagnostics.append(
                        make(
                            "QA605",
                            f"txns {t1.txn_id} ({t1.worker}) and "
                            f"{t2.txn_id} ({t2.worker}) each read what "
                            f"the other wrote ({a} / {b}): serial in "
                            f"neither order",
                            _LOC,
                        )
                    )
                    break

    return diagnostics
