"""The global trace hook the engines check on their hot paths.

Instrumentation is OFF by default: :data:`TRACE` is ``None`` and every
engine hook is a single ``if runtime.TRACE is not None`` test — no
allocation, no call, no measurable overhead (the acceptance criterion
is checked against ``benchmarks/bench_cache.py``).

``repro sanitize`` installs a :class:`TraceCollector` for the duration
of one harness run via the :func:`tracing` context manager; the driver
tags each simulated worker thread with :func:`worker` so events carry
the logical worker name even though the simulation is single-threaded.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro.sanitizer.events import Event

#: the active collector, or ``None`` when sanitizing is off
TRACE: TraceCollector | None = None


class TraceCollector:
    """Accumulates :class:`Event` records for one instrumented run."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._seq = 0
        self.current_worker = "main"

    def _emit(
        self, kind: str, txn_id: int, resource: Any = "", mode: str = ""
    ) -> None:
        self.events.append(
            Event(
                seq=self._seq,
                kind=kind,
                worker=self.current_worker,
                txn_id=txn_id,
                resource=repr(resource) if resource != "" else "",
                mode=mode,
            )
        )
        self._seq += 1

    # -- hooks called by the engines ----------------------------------

    def txn_begin(self, txn_id: int) -> None:
        self._emit("begin", txn_id)

    def txn_commit(self, txn_id: int) -> None:
        self._emit("commit", txn_id)

    def txn_abort(self, txn_id: int) -> None:
        self._emit("abort", txn_id)

    def lock_acquired(self, txn_id: int, resource: Any, mode: str) -> None:
        self._emit("acquire", txn_id, resource, mode)

    def lock_released(self, txn_id: int, resource: Any) -> None:
        self._emit("release", txn_id, resource)

    def write(self, resource: Any, txn_id: int = -1) -> None:
        """A storage-level mutation of ``resource`` (a ``(kind, key)``
        tuple); ``txn_id`` is ``-1`` when no transaction is active."""
        self._emit("write", txn_id, resource)

    def read(self, resource: Any, txn_id: int = -1) -> None:
        """A storage-level read of ``resource``.

        The protection mode is taken from the MVCC oracle at the moment
        of the read: ``"snapshot"`` reads run against an immutable
        version and cannot race writers; bare ``""`` reads are QA601
        read/write race candidates.
        """
        # deferred import: the oracle sits below the storage layer that
        # calls this hook, keeping the runtime module dependency-light
        from repro.txn import oracle

        self._emit("read", txn_id, resource, oracle.read_mode())


@contextmanager
def tracing() -> Iterator[TraceCollector]:
    """Install a fresh collector as the global :data:`TRACE`."""
    global TRACE
    previous = TRACE
    collector = TraceCollector()
    TRACE = collector
    try:
        yield collector
    finally:
        TRACE = previous


@contextmanager
def worker(name: str) -> Iterator[None]:
    """Tag events emitted in this scope with the logical worker
    ``name``.  A no-op when sanitizing is off."""
    collector = TRACE
    if collector is None:
        yield
        return
    previous = collector.current_worker
    collector.current_worker = name
    try:
        yield
    finally:
        collector.current_worker = previous
