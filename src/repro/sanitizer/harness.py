"""The ``repro sanitize`` harness: one instrumented Figure 3 run.

The run is staged so clean executions stay silent:

1. load + cache warm-up happen *outside* tracing (the bulk path is
   single-threaded by construction — racing it would only add noise);
2. the interactive workload runs under :func:`~repro.sanitizer.runtime.
   tracing`, with every simulated worker tagged by the driver;
3. an optional seeded fault (:mod:`repro.sanitizer.faults`) is planted
   while tracing is still live, so lock/race faults land in the trace;
4. tracing is torn down, then the race detector and the snapshot-
   anomaly audit replay the trace and the integrity auditors walk the
   engine — outside tracing, because
   the WAL-replay audit re-inserts every row into a scratch database
   and those writes must not pollute the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic
from repro.core import make_connector
from repro.driver import InteractiveConfig, InteractiveWorkloadRunner
from repro.sanitizer.anomalies import audit_history
from repro.sanitizer.faults import FAULTS, applicable_modes, inject
from repro.sanitizer.integrity import audit_connector
from repro.sanitizer.race import analyze_trace
from repro.sanitizer.runtime import tracing
from repro.snb.datagen import SnbDataset


@dataclass
class SanitizeReport:
    """Everything one instrumented run produced."""

    system: str
    write_batch_size: int
    inject: str | None
    expected: frozenset[str]
    event_count: int
    updates_applied: int
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def observed_codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """Clean runs must be silent; injected runs must report exactly
        the planted fault's codes."""
        return self.observed_codes == self.expected


def run_sanitize(
    system: str,
    dataset: SnbDataset,
    *,
    readers: int = 4,
    duration_ms: float = 200.0,
    write_batch_size: int = 1,
    max_update_events: int | None = None,
    inject_mode: str | None = None,
) -> SanitizeReport:
    """Run one system's interactive workload under instrumentation."""
    connector = make_connector(system)
    connector.load(dataset)
    connector.enable_caching()
    targets = connector.sanitize_targets()
    if inject_mode is not None and inject_mode not in FAULTS:
        raise ValueError(
            f"unknown fault mode {inject_mode!r}; known: "
            f"{', '.join(sorted(FAULTS))}"
        )
    if (
        inject_mode is not None
        and inject_mode not in applicable_modes(targets)
    ):
        raise ValueError(
            f"fault {inject_mode!r} is not applicable to {system}"
        )

    config = InteractiveConfig(
        readers=readers,
        duration_ms=duration_ms,
        window_ms=duration_ms / 4,
        max_update_events=max_update_events,
        write_batch_size=write_batch_size,
    )
    with tracing() as trace:
        result = InteractiveWorkloadRunner(connector, dataset, config).run()
        if inject_mode is not None:
            inject(inject_mode, targets)

    diagnostics = analyze_trace(trace.events)
    diagnostics += audit_history(trace.events)
    diagnostics += audit_connector(connector)
    return SanitizeReport(
        system=system,
        write_batch_size=write_batch_size,
        inject=inject_mode,
        expected=(
            FAULTS[inject_mode].expected
            if inject_mode is not None
            else frozenset()
        ),
        event_count=len(trace.events),
        updates_applied=result.updates_applied,
        diagnostics=diagnostics,
    )
