"""Post-run data-integrity audits: QA701/QA702/QA703/QA704.

Each connector exposes its auditable internals through
``Connector.sanitize_targets()`` — a mapping from a *target kind* to an
engine object.  The auditors walk the engine's primary structures and
its redundant ones (indexes, caches, the WAL) and report every
disagreement:

QA701  dangling edge / foreign-key endpoint
QA702  index entry disagrees with the heap / store row
QA703  cache entry whose dependency set no longer matches recomputed
       truth (audits :class:`~repro.cache.DependencyTrackingCache`)
QA704  WAL / group-commit replay divergence

Target kinds:

``sql``    a relational :class:`~repro.relational.engine.Database`
           holding the SNB schema (FK map below)
``sqlg``   a relational Database holding Sqlg's ``v_*``/``e_*`` tables
``graph``  a :class:`~repro.graphdb.store.GraphStore`
``rdf``    a :class:`~repro.rdf.triples.TripleStore`
``titan``  a :class:`~repro.titan.graph.TitanProvider`
``wal``    a :class:`~repro.storage.wal.WriteAheadLog` whose records
           are opaque (replay compare impossible; un-fsynced appends
           are the divergence proxy)

Audits run with no active cost ledger, so the ``charge`` calls inside
the engines are no-ops and the walk is free in simulated time.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.diagnostics import Diagnostic, SourceLocation, make
from repro.graphdb.store import Direction, GraphStore
from repro.rdf.triples import TripleStore
from repro.relational.engine import Database
from repro.storage.hashindex import HashIndex
from repro.storage.wal import WriteAheadLog
from repro.titan.graph import TitanProvider, _encode_value, _pad


def _loc(operation: str) -> SourceLocation:
    return SourceLocation("runtime", operation)


def audit_connector(connector: Any) -> list[Diagnostic]:
    """Run every applicable integrity audit for ``connector``."""
    diagnostics: list[Diagnostic] = []
    for kind, target in sorted(connector.sanitize_targets().items()):
        if kind == "sql":
            diagnostics += _audit_sql_fks(target, _SQL_FOREIGN_KEYS)
            diagnostics += _audit_sql_indexes(target)
            diagnostics += _audit_sql_replay(target)
        elif kind == "sqlg":
            diagnostics += _audit_sqlg_edges(target)
            diagnostics += _audit_sql_indexes(target)
            diagnostics += _audit_sql_replay(target)
        elif kind == "graph":
            diagnostics += _audit_graph_store(target)
        elif kind == "rdf":
            diagnostics += _audit_triple_store(target)
        elif kind == "titan":
            diagnostics += _audit_titan(target)
        elif kind == "wal":
            diagnostics += _audit_wal(target)
        else:
            raise ValueError(f"unknown sanitize target kind {kind!r}")
    return diagnostics


# -- relational ---------------------------------------------------------------

#: table -> [(fk column, candidate referenced tables)]; a NULL FK value
#: is never dangling.  Multi-candidate targets model SNB's message
#: polymorphism (a reply/like may point at a post or a comment).
_SQL_FOREIGN_KEYS: dict[str, list[tuple[str, tuple[str, ...]]]] = {
    "person": [("cityid", ("place",))],
    "person_speaks": [("personid", ("person",))],
    "person_email": [("personid", ("person",))],
    "person_interest": [
        ("personid", ("person",)),
        ("tagid", ("tag",)),
    ],
    "person_studyat": [
        ("personid", ("person",)),
        ("orgid", ("organisation",)),
    ],
    "person_workat": [
        ("personid", ("person",)),
        ("orgid", ("organisation",)),
    ],
    "knows": [("p1", ("person",)), ("p2", ("person",))],
    "forum": [("moderatorid", ("person",))],
    "forum_tag": [("forumid", ("forum",)), ("tagid", ("tag",))],
    "forum_member": [
        ("forumid", ("forum",)),
        ("personid", ("person",)),
    ],
    "post": [
        ("creatorid", ("person",)),
        ("forumid", ("forum",)),
        ("countryid", ("place",)),
    ],
    "post_tag": [("postid", ("post",)), ("tagid", ("tag",))],
    "comment": [
        ("creatorid", ("person",)),
        ("replyof", ("post", "comment")),
        ("rootpost", ("post",)),
        ("countryid", ("place",)),
    ],
    "comment_tag": [("commentid", ("comment",)), ("tagid", ("tag",))],
    "likes": [
        ("personid", ("person",)),
        ("messageid", ("post", "comment")),
    ],
    "tag": [("classid", ("tagclass",))],
    "tagclass": [("subclassof", ("tagclass",))],
    "place": [("partof", ("place",))],
    "organisation": [("placeid", ("place",))],
}


def _pk_values(db: Database, table_name: str) -> set[Any]:
    table = db.catalog.table(table_name)
    pos = (
        table.column_position(table.primary_key)
        if table.primary_key is not None
        else 0
    )
    return {row[pos] for _, row in table.scan()}


def _audit_sql_fks(
    db: Database,
    fk_map: dict[str, list[tuple[str, tuple[str, ...]]]],
) -> list[Diagnostic]:
    """QA701: every FK value resolves to a row in a candidate table."""
    diagnostics: list[Diagnostic] = []
    existing = set(db.catalog.table_names())
    pk_cache: dict[str, set[Any]] = {}
    for table_name, fks in fk_map.items():
        if table_name not in existing:
            continue
        table = db.catalog.table(table_name)
        checks = []
        for column, targets in fks:
            valid: set[Any] = set()
            for target in targets:
                if target not in pk_cache:
                    pk_cache[target] = _pk_values(db, target)
                valid |= pk_cache[target]
            checks.append((table.column_position(column), column, valid))
        for _handle, row in table.scan():
            for pos, column, valid in checks:
                value = row[pos]
                if value is not None and value not in valid:
                    diagnostics.append(
                        make(
                            "QA701",
                            f"{table_name}.{column} = {value!r} "
                            f"references no existing row",
                            _loc(f"integrity:{table_name}"),
                        )
                    )
    return diagnostics


def _audit_sqlg_edges(db: Database) -> list[Diagnostic]:
    """QA701 for Sqlg: ``e_*`` endpoints resolve in their ``v_*``
    tables (the target vertex table comes from the per-row label)."""
    diagnostics: list[Diagnostic] = []
    names = db.catalog.table_names()
    pk_cache: dict[str, set[Any]] = {}
    for name in names:
        if not name.startswith("e_"):
            continue
        table = db.catalog.table(name)
        cols = {
            c: table.column_position(c)
            for c in ("out_id", "in_id", "out_label", "in_label")
        }
        for _handle, row in table.scan():
            for id_col, label_col in (
                ("out_id", "out_label"),
                ("in_id", "in_label"),
            ):
                vid = row[cols[id_col]]
                vtable = f"v_{row[cols[label_col]]}"
                if vid is None:
                    continue
                if vtable not in names:
                    ids: set[Any] = set()
                else:
                    if vtable not in pk_cache:
                        pk_cache[vtable] = _pk_values(db, vtable)
                    ids = pk_cache[vtable]
                if vid not in ids:
                    diagnostics.append(
                        make(
                            "QA701",
                            f"{name}.{id_col} = {vid!r} references no "
                            f"row in {vtable}",
                            _loc(f"integrity:{name}"),
                        )
                    )
    return diagnostics


def _audit_sql_indexes(db: Database) -> list[Diagnostic]:
    """QA702: hash indexes agree with the heap in both directions."""
    diagnostics: list[Diagnostic] = []
    for name in db.catalog.table_names():
        table = db.catalog.table(name)
        rows = {handle: row for handle, row in table.scan()}
        for column, index in table._indexes.items():
            if not isinstance(index, HashIndex):
                continue  # no B+tree secondaries in the SNB schemas
            pos = table.column_position(column)
            loc = _loc(f"integrity:{name}.{column}")
            for key, handle in index.items():
                row = rows.get(handle)
                if row is None:
                    diagnostics.append(
                        make(
                            "QA702",
                            f"index {name}.{column} maps {key!r} to "
                            f"handle {handle!r} but no such row exists",
                            loc,
                        )
                    )
                elif row[pos] != key:
                    diagnostics.append(
                        make(
                            "QA702",
                            f"index {name}.{column} maps {key!r} to a "
                            f"row whose value is {row[pos]!r}",
                            loc,
                        )
                    )
            for handle, row in rows.items():
                value = row[pos]
                if value is None:
                    continue
                if handle not in index.search(value):
                    diagnostics.append(
                        make(
                            "QA702",
                            f"row {value!r} of {name}.{column} is "
                            f"missing from its index",
                            loc,
                        )
                    )
    return diagnostics


def _audit_sql_replay(db: Database) -> list[Diagnostic]:
    """QA704: replaying the durable WAL reproduces the live tables."""
    try:
        replayed = Database.recover(
            db.wal,
            storage=db.catalog.storage,
            transitive_support=db.transitive_support,
            name=f"{db.name}-replay",
        )
    except Exception as exc:  # a broken log is itself a divergence
        return [
            make(
                "QA704",
                f"WAL replay failed: {exc}",
                _loc("integrity:replay"),
            )
        ]
    diagnostics: list[Diagnostic] = []
    live_names = set(db.catalog.table_names())
    replay_names = set(replayed.catalog.table_names())
    for name in sorted(live_names | replay_names):
        if name not in replay_names or name not in live_names:
            diagnostics.append(
                make(
                    "QA704",
                    f"table {name} exists only "
                    f"{'live' if name in live_names else 'in the replay'}",
                    _loc(f"integrity:{name}"),
                )
            )
            continue
        live = sorted(
            repr(row) for _, row in db.catalog.table(name).scan()
        )
        replay = sorted(
            repr(row) for _, row in replayed.catalog.table(name).scan()
        )
        if live != replay:
            diagnostics.append(
                make(
                    "QA704",
                    f"table {name}: {len(live)} live row(s) vs "
                    f"{len(replay)} after WAL replay",
                    _loc(f"integrity:{name}"),
                )
            )
    return diagnostics


# -- property graph -----------------------------------------------------------


def _audit_graph_store(store: GraphStore) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    # QA701: live relationships must join two live nodes
    for rel_id, record in enumerate(store._rels):
        if record.deleted:
            continue
        for endpoint in (record.start, record.end):
            node = (
                store._nodes[endpoint]
                if 0 <= endpoint < len(store._nodes)
                else None
            )
            if node is None or node.deleted:
                diagnostics.append(
                    make(
                        "QA701",
                        f"rel {rel_id} ({record.rel_type}) endpoint "
                        f"{endpoint} is deleted or missing",
                        _loc("integrity:rels"),
                    )
                )

    # QA702: label index and (label, prop) indexes, both directions
    live = {
        node_id: record
        for node_id, record in enumerate(store._nodes)
        if not record.deleted
    }
    for label, ids in store._label_index.items():
        loc = _loc(f"integrity:label:{label}")
        for node_id in sorted(ids):
            record = live.get(node_id)
            if record is None or label not in record.labels:
                diagnostics.append(
                    make(
                        "QA702",
                        f"label index {label} lists node {node_id}, "
                        f"which is deleted or unlabeled",
                        loc,
                    )
                )
    for node_id, record in live.items():
        for label in record.labels:
            if node_id not in store._label_index.get(label, ()):
                diagnostics.append(
                    make(
                        "QA702",
                        f"node {node_id} carries :{label} but is "
                        f"missing from the label index",
                        _loc(f"integrity:label:{label}"),
                    )
                )
    for (label, prop), index in store._indexes.items():
        loc = _loc(f"integrity:{label}.{prop}")
        for value, node_id in index.items():
            record = live.get(node_id)
            if (
                record is None
                or label not in record.labels
                or record.props.get(prop) != value
            ):
                diagnostics.append(
                    make(
                        "QA702",
                        f"index :{label}({prop}) maps {value!r} to "
                        f"node {node_id}, which disagrees",
                        loc,
                    )
                )
        for node_id, record in live.items():
            if label not in record.labels:
                continue
            value = record.props.get(prop)
            if value is not None and node_id not in index.search(value):
                diagnostics.append(
                    make(
                        "QA702",
                        f"node {node_id} ({prop}={value!r}) is missing "
                        f"from index :{label}({prop})",
                        loc,
                    )
                )

    diagnostics += _audit_neighborhood_cache(store)
    return diagnostics


def _audit_neighborhood_cache(store: GraphStore) -> list[Diagnostic]:
    """QA703: every cached neighborhood equals a fresh recomputation
    and declares exactly the dependency set the recomputation implies."""
    cache = store._neighborhood_cache
    if cache is None:
        return []
    diagnostics: list[Diagnostic] = []
    for key, value, deps in cache.entries():
        node_id, rel_type, direction_value = key[0], key[1], key[2]
        direction = Direction(direction_value)
        loc = _loc(f"integrity:neighborhood:{node_id}")
        try:
            if len(key) == 4:  # friends_of_friends entry
                friends = {
                    other
                    for _, other in store.relationships(
                        node_id, rel_type, direction
                    )
                }
                fof: set[int] = set()
                for friend in friends:
                    for _, other in store.relationships(
                        friend, rel_type, direction
                    ):
                        if other != node_id and other not in friends:
                            fof.add(other)
                truth: tuple = tuple(sorted(fof))
                true_deps = frozenset({node_id, *friends})
            else:
                truth = tuple(
                    store.relationships(node_id, rel_type, direction)
                )
                true_deps = frozenset({node_id})
        except KeyError:
            diagnostics.append(
                make(
                    "QA703",
                    f"cache entry {key!r} anchors a deleted node",
                    loc,
                )
            )
            continue
        if value != truth:
            diagnostics.append(
                make(
                    "QA703",
                    f"cache entry {key!r} holds {value!r} but the "
                    f"store now yields {truth!r}",
                    loc,
                )
            )
        elif frozenset(deps) != true_deps:
            diagnostics.append(
                make(
                    "QA703",
                    f"cache entry {key!r} declares deps "
                    f"{sorted(deps)} but truth implies "
                    f"{sorted(true_deps)}",
                    loc,
                )
            )
    return diagnostics


# -- RDF ----------------------------------------------------------------------

#: predicates whose object must be a typed entity (edge predicates of
#: the SNB vocabulary plus the reified-statement endpoint predicates)
_RDF_EDGE_PREDICATES = frozenset(
    {
        "snb:knows",
        "snb:hasCreator",
        "snb:containerOf",
        "snb:replyOf",
        "snb:rootPost",
        "snb:likes",
        "snb:hasModerator",
        "snb:hasMember",
        "snb:hasTag",
        "snb:hasInterest",
        "snb:isLocatedIn",
        "snb:isPartOf",
        "snb:isSubclassOf",
        "snb:hasType",
        "snb:studyAt",
        "snb:workAt",
        "snb:knowsFrom",
        "snb:knowsTo",
        "snb:memberForum",
        "snb:memberPerson",
        "snb:likePerson",
        "snb:likeMessage",
    }
)


def _audit_triple_store(store: TripleStore) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    # QA701: edge-predicate objects must carry an rdf:type
    typed = {s for s, _p, _o in store.match(None, "rdf:type", None)}
    for s, p, o in store.match(None, None, None):
        if p in _RDF_EDGE_PREDICATES and o not in typed:
            diagnostics.append(
                make(
                    "QA701",
                    f"triple ({s} {p} {o}): object is not a typed "
                    f"entity",
                    _loc("integrity:triples"),
                )
            )

    # QA702: the three covering indexes must hold the same triple set
    spo = {key for key, _ in store._spo.items()}
    pos = {(s, p, o) for (p, o, s), _ in store._pos.items()}
    osp = {(s, p, o) for (o, s, p), _ in store._osp.items()}
    for name, rotated in (("pos", pos), ("osp", osp)):
        if rotated != spo:
            missing = len(spo - rotated)
            extra = len(rotated - spo)
            diagnostics.append(
                make(
                    "QA702",
                    f"covering index {name} disagrees with spo: "
                    f"{missing} missing, {extra} extra",
                    _loc(f"integrity:{name}"),
                )
            )
    return diagnostics


# -- Titan --------------------------------------------------------------------


def _audit_titan(provider: TitanProvider) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    # QA701: both endpoints of every adjacency row must exist (each
    # edge is stored twice; report once per edge id)
    seen_edges: set[str] = set()
    for key, _value in provider._scan("e:"):
        parts = key.split(":")
        if parts[5] in seen_edges:
            continue
        seen_edges.add(parts[5])
        for vid in (parts[1], parts[4]):
            if provider._get(f"v:{vid}") is None:
                diagnostics.append(
                    make(
                        "QA701",
                        f"edge row {key} references missing vertex "
                        f"{int(vid)}",
                        _loc("integrity:edges"),
                    )
                )

    # QA702: composite index entries vs vertex rows, both directions
    for key, _value in provider._scan("i:"):
        parts = key.split(":")
        label, prop, vid = parts[1], parts[2], parts[-1]
        encoded = ":".join(parts[3:-1])
        loc = _loc(f"integrity:index:{label}.{prop}")
        raw = provider._get(f"v:{vid}")
        if raw is None:
            diagnostics.append(
                make(
                    "QA702",
                    f"index entry {key} references missing vertex "
                    f"{int(vid)}",
                    loc,
                )
            )
            continue
        record = json.loads(raw)
        value = record["props"].get(prop)
        if (
            record["label"] != label
            or value is None
            or _encode_value(value) != encoded
        ):
            diagnostics.append(
                make(
                    "QA702",
                    f"index entry {key} disagrees with vertex "
                    f"{int(vid)} ({prop}={value!r})",
                    loc,
                )
            )
    for _key, raw in provider._scan("v:"):
        record = json.loads(raw)
        vid = record["props"]["id"]
        for ilabel, ikey in sorted(provider._indexed):
            if record["label"] != ilabel:
                continue
            value = record["props"].get(ikey)
            if value is None:
                continue
            entry = (
                f"i:{ilabel}:{ikey}:{_encode_value(value)}:{_pad(vid)}"
            )
            if provider._get(entry) is None:
                diagnostics.append(
                    make(
                        "QA702",
                        f"vertex {vid} ({ikey}={value!r}) is missing "
                        f"from index {ilabel}.{ikey}",
                        _loc(f"integrity:index:{ilabel}.{ikey}"),
                    )
                )
    return diagnostics


# -- WAL ----------------------------------------------------------------------


def _audit_wal(wal: WriteAheadLog) -> list[Diagnostic]:
    """QA704 for engines whose WAL records are opaque markers: any
    record appended but never fsynced would be lost on a crash."""
    if wal.unsynced_records == 0:
        return []
    return [
        make(
            "QA704",
            f"{wal.name}: {wal.unsynced_records} record(s) appended "
            f"but never made durable by a commit",
            _loc("integrity:wal"),
        )
    ]
