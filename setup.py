"""Setuptools shim: the offline environment lacks the wheel package, so the
legacy ``setup.py develop`` editable-install path is used instead of PEP 660."""

from setuptools import setup

setup()
