"""Compiled-execution smoke bench: interpreted vs. compiled closures.

The two-hop mix (the paper's dominant read pattern) over eight curated
persons at SF3, run per system in both execution modes on *fresh*
connectors, cold and warm:

* **cold** — the first pass pays parse/plan plus ``closure_compile``
  (and, for Gremlin, the script-to-bytecode charge) before any closure
  can run;
* **warm** — repeats hit the epoch-keyed closure caches and pay only
  ``compiled_exec`` parameter binding before the vectorized kernels.

The headline assertion is the tentpole target: the compiled path must
be **at least 10x faster warm** than the tuple-at-a-time interpreter
for Neo4j-Cypher and Neo4j-Gremlin, whose interpreted paths price
per-row result protocol and per-traverser step evaluation (plus
per-request script compilation — no script cache, as in the paper).
The relational/RDF engines won't see 10x — Postgres's two-hop is
already a pair of hash joins and Virtuoso's engine is vectorized in
*both* modes — but compiled must never be slower than interpreted.

Results land in ``BENCH_compiled.json`` at the repo root (the CI
perf-smoke artifact).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import make_connector
from repro.core.benchmark import WorkloadParams
from repro.simclock import CostModel, meter

from conftest import SCALE_DIVISOR, banner

MODEL = CostModel()
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_compiled.json"
REPS = 5
SYSTEMS = (
    "postgres-sql",
    "neo4j-cypher",
    "neo4j-gremlin",
    "virtuoso-sparql",
)
#: the tentpole acceptance bar, asserted for the two interpreter-priced
#: graph dialects
TENTPOLE_SPEEDUP = 10.0
TENTPOLE_SYSTEMS = ("neo4j-cypher", "neo4j-gremlin")

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def mix_pids(sf3_dataset):
    return WorkloadParams.curate(sf3_dataset, count=8, seed=7).person_ids


def _mix_ms(connector, pids) -> float:
    with meter() as ledger:
        for pid in pids:
            connector.two_hop(pid)
    return ledger.cost_us(MODEL) / 1000.0


def _measure(key: str, mode: str, dataset, pids) -> tuple[float, float]:
    """(cold, warm-median) mix cost on a fresh connector in ``mode``."""
    connector = make_connector(key)
    connector.load(dataset)
    connector.set_execution_mode(mode)
    cold = _mix_ms(connector, pids)
    warms = sorted(_mix_ms(connector, pids) for _ in range(REPS))
    return cold, warms[len(warms) // 2]


@pytest.mark.parametrize("key", SYSTEMS)
def test_two_hop_mix_interpreted_vs_compiled(key, sf3_dataset, mix_pids):
    interp_cold, interp_warm = _measure(
        key, "interpreted", sf3_dataset, mix_pids
    )
    compiled_cold, compiled_warm = _measure(
        key, "compiled", sf3_dataset, mix_pids
    )
    warm_speedup = interp_warm / compiled_warm
    _RESULTS[key] = {
        "interpreted_cold_ms": round(interp_cold, 4),
        "interpreted_warm_ms": round(interp_warm, 4),
        "compiled_cold_ms": round(compiled_cold, 4),
        "compiled_warm_ms": round(compiled_warm, 4),
        "warm_speedup": round(warm_speedup, 2),
    }
    # a first compiled pass pays closure_compile on top of parse/plan,
    # so it must cost more than the warm repeats it amortizes into
    assert compiled_cold > compiled_warm
    # compiled execution is the default mode: it must never lose to
    # the interpreter, on any dialect
    assert warm_speedup >= 1.0, (
        f"{key}: compiled warm path slower than interpreted "
        f"({warm_speedup:.2f}x)"
    )
    if key in TENTPOLE_SYSTEMS:
        assert warm_speedup >= TENTPOLE_SPEEDUP, (
            f"{key}: warm two-hop mix speedup {warm_speedup:.2f}x "
            f"below the {TENTPOLE_SPEEDUP:g}x target"
        )


def test_write_report():
    """Runs last: persist the artifact the CI perf-smoke job uploads."""
    assert _RESULTS, "compiled benches did not run"
    report = {
        "bench": "compiled",
        "scale_factor": 3,
        "scale_divisor": SCALE_DIVISOR,
        "repetitions": REPS,
        "results": _RESULTS,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(banner("Compiled vs. interpreted execution: two-hop mix"))
    for name, row in _RESULTS.items():
        print(f"{name}: {json.dumps(row)}")
