"""Table 4 — single-loader data ingestion for the TinkerPop systems.

Paper shape: Neo4j's native store gives the best single-loader rates;
Sqlg has the worst edge-insertion rate (each edge is an INSERT plus two
index maintenances through the SQL layer); Titan-C pays a Cassandra round
trip per KV write.
"""

from repro.core import make_connector
from repro.core.report import render_table
from repro.driver import sequential_load

from conftest import banner

TINKERPOP_SYSTEMS = ["neo4j-gremlin", "titan-c", "titan-b", "sqlg"]


def run_loads(dataset):
    reports = {}
    for key in TINKERPOP_SYSTEMS:
        connector = make_connector(key)
        reports[key] = sequential_load(connector.provider, dataset)
    return reports


def test_table4_single_loader(benchmark, sf3_dataset):
    reports = benchmark.pedantic(
        run_loads, args=(sf3_dataset,), iterations=1, rounds=1
    )
    rows = [
        [
            key,
            round(r.total_minutes, 2),
            round(r.vertices_per_second),
            round(r.edges_per_second),
        ]
        for key, r in reports.items()
    ]
    print(banner("Table 4: data loading, SF3 graph, single loader"))
    print(
        render_table(
            "",
            ["System", "Total time (min)", "Vertex / second",
             "Edge / second"],
            rows,
        )
    )
    edge_rates = {k: r.edges_per_second for k, r in reports.items()}
    vertex_rates = {k: r.vertices_per_second for k, r in reports.items()}
    # Neo4j best at both rates; Sqlg worst at edges
    assert max(edge_rates, key=edge_rates.get) == "neo4j-gremlin"
    assert max(vertex_rates, key=vertex_rates.get) == "neo4j-gremlin"
    assert min(edge_rates, key=edge_rates.get) == "sqlg"
    # Titan-C pays remote round trips: slower than embedded Titan-B
    assert edge_rates["titan-c"] < edge_rates["titan-b"]
