"""Cluster smoke bench: scatter/gather scaling + bounded replica staleness.

Two measurements over the sharded deployment (``repro.cluster``):

* **read-mix scaling** — the paper's interactive read mix (point lookups,
  one-hop, recent posts, friends' recent posts, two-hop) run open-loop
  against 1-shard and 4-shard clusters of the same backend.  Pods work
  concurrently, so sustained throughput is ``ops / max(per-pod busy
  time)``: point reads hash-distribute across shards and fan-out reads
  split by friends' home shards, so the 4-shard deployment must clear
  **at least 3x** the single-shard throughput (the tentpole acceptance
  bar; the gap to ideal 4x is hash skew plus the coordinator's
  scatter overhead).
* **bounded staleness** — CDC-fed replicas accumulate measurable lag
  while the update stream runs, a replica-preference read drains its
  serving replica to within the staleness budget before answering, and
  a full sync returns every replica to lag zero.

Results land in ``BENCH_cluster.json`` at the repo root (the CI
perf-smoke artifact).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster import ClusterConnector, shard_of
from repro.core.benchmark import WorkloadParams

from conftest import SCALE_DIVISOR, banner

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"
BACKEND = "postgres-sql"
#: the tentpole acceptance bar: 4 shards vs 1 on the read mix
SCALING_TARGET = 3.0
STALENESS_BUDGET = 8
UPDATE_EVENTS = 300

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def mix_pids(sf3_dataset):
    return WorkloadParams.curate(sf3_dataset, count=12, seed=7).person_ids


def _run_mix(cluster: ClusterConnector, pids) -> int:
    """One pass of the interactive read mix; returns the op count."""
    ops = 0
    for pid in pids:
        cluster.point_lookup(pid)
        cluster.one_hop(pid)
        cluster.person_recent_posts(pid, 10)
        cluster.friends_recent_posts(pid, 10)
        cluster.two_hop(pid)
        ops += 5
    return ops


def _throughput(shards: int, dataset, pids) -> dict:
    cluster = ClusterConnector(BACKEND, shards=shards)
    cluster.load(dataset)
    cluster.scatter.reset_busy()
    ops = _run_mix(cluster, pids)
    busy = cluster.scatter.busy_us
    critical_us = cluster.scatter.max_busy_us()
    return {
        "shards": shards,
        "ops": ops,
        "critical_path_ms": round(critical_us / 1000.0, 4),
        "total_pod_work_ms": round(sum(busy.values()) / 1000.0, 4),
        "pod_busy_ms": {
            str(pod): round(us / 1000.0, 4)
            for pod, us in sorted(busy.items())
        },
        "throughput_ops_per_s": round(ops / (critical_us / 1e6), 1),
    }


def test_read_mix_scaling(sf3_dataset, mix_pids):
    single = _throughput(1, sf3_dataset, mix_pids)
    sharded = _throughput(4, sf3_dataset, mix_pids)
    speedup = (
        sharded["throughput_ops_per_s"] / single["throughput_ops_per_s"]
    )
    _RESULTS["read_mix_scaling"] = {
        "backend": BACKEND,
        "1_shard": single,
        "4_shards": sharded,
        "speedup_4v1": round(speedup, 2),
    }
    # the work itself must not balloon under sharding: fan-out reads
    # repartition the same per-friend probes, they don't duplicate them
    assert (
        sharded["total_pod_work_ms"] < single["total_pod_work_ms"] * 1.25
    )
    assert speedup >= SCALING_TARGET, (
        f"4-shard read mix only {speedup:.2f}x a single shard "
        f"(target {SCALING_TARGET:g}x)"
    )


def test_replica_staleness_bounded(sf3_dataset, mix_pids):
    cluster = ClusterConnector(
        BACKEND,
        shards=4,
        replicas=2,
        read_preference="replica",
        staleness_budget=STALENESS_BUDGET,
    )
    cluster.load(sf3_dataset)
    events = sf3_dataset.updates[:UPDATE_EVENTS]
    for event in events:
        cluster.apply_update(event)
    lag_before = cluster.max_staleness()
    assert lag_before > STALENESS_BUDGET, "update stream built no lag"

    # a replica-preference read drains its serving replica to within
    # the budget before answering
    pid = mix_pids[0]
    cluster.one_hop(pid)
    serving = (shard_of(pid, 4), 0)
    lag_served = cluster.replica_staleness()[serving]
    assert lag_served <= STALENESS_BUDGET

    applied = cluster.sync_replicas(0)
    assert cluster.max_staleness() == 0
    _RESULTS["replica_staleness"] = {
        "backend": BACKEND,
        "shards": 4,
        "replicas_per_shard": 2,
        "update_events": len(events),
        "staleness_budget_records": STALENESS_BUDGET,
        "max_lag_before_reads": lag_before,
        "serving_replica_lag_after_read": lag_served,
        "events_applied_by_full_sync": applied,
        "max_lag_after_full_sync": cluster.max_staleness(),
    }


def test_write_report():
    """Runs last: persist the artifact the CI perf-smoke job uploads."""
    assert _RESULTS, "cluster benches did not run"
    report = {
        "bench": "cluster",
        "scale_factor": 3,
        "scale_divisor": SCALE_DIVISOR,
        "results": _RESULTS,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(banner("Sharded scatter/gather: read-mix scaling + staleness"))
    for name, row in _RESULTS.items():
        print(f"{name}: {json.dumps(row)}")
