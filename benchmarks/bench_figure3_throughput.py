"""Figure 3 — read & write throughput under the real-time interactive
workload (SF3, concurrent readers + one Kafka-fed writer).

Paper shape asserted below:

* Postgres (SQL) and Virtuoso (SQL) have the best write throughput;
  Postgres leads Virtuoso by ~1.6x (row vs columnar storage);
* Virtuoso (SQL) writes ~3x faster than Virtuoso (SPARQL) (multi-index
  triple-table maintenance);
* read throughputs of the viable systems are within roughly a factor of
  four of each other, Gremlin systems lowest overall;
* Neo4j (Cypher) outperforms Titan-C in writes but shows checkpoint dips,
  while Titan-C sustains a steady (slow) write rate;
* Titan-B suffers such degradation it is effectively withdrawn.
"""

import os

from repro.core import SUT_KEYS
from repro.core.report import render_series, render_table
from repro.driver import InteractiveConfig, InteractiveWorkloadRunner

from conftest import banner

READERS = int(os.environ.get("REPRO_READERS", "32"))
DURATION_MS = float(os.environ.get("REPRO_DURATION_MS", "800"))


def run_all(dataset, connectors):
    config = InteractiveConfig(
        readers=READERS,
        duration_ms=DURATION_MS,
        window_ms=DURATION_MS / 10,
        checkpoint_interval_ms=DURATION_MS / 5,
        checkpoint_stall_us_per_record=2_000.0,
    )
    results = {}
    for key in SUT_KEYS:
        runner = InteractiveWorkloadRunner(connectors[key], dataset, config)
        results[key] = runner.run()
    return results


def test_figure3_interactive_throughput(benchmark, sf3_dataset, sf3_connectors):
    results = benchmark.pedantic(
        run_all, args=(sf3_dataset, sf3_connectors), iterations=1, rounds=1
    )

    rows = [
        [
            key,
            round(r.read_throughput),
            round(r.write_throughput),
            r.read_failures,
            "yes" if r.server_crashed else "no",
        ]
        for key, r in results.items()
    ]
    print(
        banner(
            f"Figure 3: aggregate throughput, {READERS} readers + 1 writer"
        )
    )
    print(
        render_table(
            "",
            ["System", "reads/s", "writes/s", "read failures", "crashed"],
            rows,
        )
    )
    print()
    print(
        render_series(
            "Write throughput over time (ops/s; note the Neo4j dips)",
            {
                "neo4j-cypher": results["neo4j-cypher"].write_windows.series(),
                "postgres-sql": results["postgres-sql"].write_windows.series(),
                "titan-c": results["titan-c"].write_windows.series(),
            },
        )
    )

    reads = {k: r.read_throughput for k, r in results.items()}
    writes = {k: r.write_throughput for k, r in results.items()}

    # RDBMSes with native SQL lead the write ranking
    viable = {k: v for k, v in writes.items() if k != "titan-b"}
    assert max(viable, key=viable.get) in ("postgres-sql", "virtuoso-sql")
    # Postgres ~1.6x Virtuoso (row store vs column store under updates)
    ratio = writes["postgres-sql"] / writes["virtuoso-sql"]
    assert 1.15 < ratio < 4.0, f"postgres/virtuoso write ratio {ratio:.2f}"
    # Virtuoso SQL vs SPARQL writes: ~3x (index maintenance on one table)
    sparql_ratio = writes["virtuoso-sql"] / writes["virtuoso-sparql"]
    assert 1.5 < sparql_ratio < 8.0, f"sql/sparql write ratio {sparql_ratio:.2f}"
    # Neo4j (Cypher) writes faster than Titan-C (Gremlin)
    assert writes["neo4j-cypher"] > writes["titan-c"]
    # Gremlin systems have the lowest read throughput
    gremlin_best = max(
        reads[k] for k in ("neo4j-gremlin", "titan-c", "sqlg")
    )
    native_worst = min(
        reads[k]
        for k in ("postgres-sql", "virtuoso-sql", "virtuoso-sparql",
                  "neo4j-cypher")
    )
    assert native_worst > gremlin_best
    # Titan-B collapses under concurrency (withdrawn in the paper)
    assert reads["titan-b"] < 0.5 * reads["titan-c"]


def test_figure3_neo4j_checkpoint_dips(benchmark, sf3_dataset):
    """The write-rate time series shows periodic checkpoint stalls."""
    from repro.core import make_connector

    def run():
        connector = make_connector("neo4j-cypher")
        connector.load(sf3_dataset)
        connector.set_execution_mode("interpreted")  # paper-era engine
        config = InteractiveConfig(
            readers=8,
            duration_ms=1_000.0,
            window_ms=50.0,
            checkpoint_interval_ms=200.0,
            checkpoint_stall_us_per_record=3_000.0,
        )
        return InteractiveWorkloadRunner(
            connector, sf3_dataset, config
        ).run()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    series = [rate for _, rate in result.write_windows.series()]
    assert result.updates_applied > 0
    peak = max(series)
    trough = min(series[1:-1]) if len(series) > 2 else min(series)
    assert trough < peak * 0.5, (
        f"expected checkpoint dips; series={series}"
    )
