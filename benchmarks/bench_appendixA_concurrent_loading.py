"""Appendix A — aggregate ingestion rate with 1..16 concurrent loaders.

Paper shape: Titan-C (Cassandra) is the only system whose ingestion
scales with the number of loaders; Titan-B and Sqlg degrade or plateau
because of the locking their transactional backends introduce.  Neo4j
(Gremlin) is omitted: it does not support concurrent loading.
"""

import pytest

from repro.core import make_connector
from repro.core.report import render_table
from repro.driver import concurrent_load

from conftest import SCALE_DIVISOR, banner, dataset_for

LOADER_COUNTS = [1, 2, 4, 8, 16]
SYSTEMS = ["titan-c", "titan-b", "sqlg"]


@pytest.fixture(scope="module")
def loading_dataset():
    """A reduced dataset: the matrix replays 15 full loads, so this bench
    runs at 4x the session divisor (rates scale, the shape does not)."""
    return dataset_for(3, divisor=SCALE_DIVISOR * 4)


def run_matrix(dataset):
    matrix = {}
    for key in SYSTEMS:
        for loaders in LOADER_COUNTS:
            connector = make_connector(key)
            matrix[(key, loaders)] = concurrent_load(
                connector.provider, dataset, loaders
            )
    return matrix


def test_appendix_a_concurrent_loading(benchmark, loading_dataset):
    matrix = benchmark.pedantic(
        run_matrix, args=(loading_dataset,), iterations=1, rounds=1
    )
    rows = []
    for key in SYSTEMS:
        rows.append(
            [key]
            + [
                round(matrix[(key, loaders)].edges_per_second)
                for loaders in LOADER_COUNTS
            ]
        )
    print(
        banner(
            "Appendix A: aggregate edge ingestion rate (edges/s) "
            "vs concurrent loaders"
        )
    )
    print(
        render_table(
            "",
            ["System"] + [f"{n} loaders" for n in LOADER_COUNTS],
            rows,
        )
    )

    def rate(key, loaders):
        return matrix[(key, loaders)].edges_per_second

    # Titan-C scales with loaders (the only one that does)
    assert rate("titan-c", 16) > 5 * rate("titan-c", 1)
    # Titan-B does not scale: its writer latch serializes everything
    assert rate("titan-b", 16) < 1.5 * rate("titan-b", 1)
    # Sqlg's commit critical section caps its speedup well below linear
    assert rate("sqlg", 16) < 6 * rate("sqlg", 1)
    # Neo4j (Gremlin) is excluded: no concurrent loading support
    assert not make_connector("neo4j-gremlin").supports_concurrent_loading()
