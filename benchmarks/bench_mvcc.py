"""MVCC smoke bench: writers never block snapshot readers.

Three interactive runs (Figure 3 harness) of the same system at the
same reader count:

* **read-only** — no update stream at all: the reader-throughput
  ceiling for this configuration;
* **snapshot + writes** — the full update stream lands while readers
  run under MVCC snapshots.  Readers take no locks, so the only cost
  they may pay is versioning itself (timestamp allocation, version
  checks, chain walks, cache bypass for stale views).  The acceptance
  bar: **at least 0.7x** the read-only throughput, with **zero**
  reader lock waits;
* **read-committed + writes** — the fallback level for contrast: each
  update transaction drains the read/write latch, so every writer
  excludes every reader and reader throughput collapses.

Results land in ``BENCH_mvcc.json`` at the repo root (the CI
perf-smoke artifact).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import make_connector
from repro.driver import InteractiveConfig, InteractiveWorkloadRunner

from conftest import SCALE_DIVISOR, banner

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_mvcc.json"
SYSTEM = "postgres-sql"
READERS = 8
DURATION_MS = 300.0
#: the satellite acceptance bar: snapshot readers under a write mix
#: must clear this fraction of the read-only ceiling
THROUGHPUT_FLOOR = 0.7

_RESULTS: dict[str, dict] = {}


def _run(dataset, *, isolation: str, with_writes: bool) -> dict:
    connector = make_connector(SYSTEM)
    connector.load(dataset)
    connector.enable_caching()
    config = InteractiveConfig(
        readers=READERS,
        duration_ms=DURATION_MS,
        window_ms=DURATION_MS / 4,
        isolation_level=isolation,
        max_update_events=None if with_writes else 0,
    )
    result = InteractiveWorkloadRunner(connector, dataset, config).run()
    return {
        "isolation": isolation,
        "with_writes": with_writes,
        "reads": result.read_latency.count,
        "read_throughput_per_s": round(result.read_throughput, 1),
        "read_p50_ms": round(result.read_latency.percentile(50), 4),
        "read_p99_ms": round(result.read_latency.percentile(99), 4),
        "updates_applied": result.updates_applied,
        "reader_lock_waits": result.reader_lock_waits,
        "reader_lock_wait_ms": round(result.reader_lock_wait_us / 1000.0, 3),
    }


def test_snapshot_readers_keep_their_throughput(sf3_dataset):
    read_only = _run(sf3_dataset, isolation="snapshot", with_writes=False)
    snapshot = _run(sf3_dataset, isolation="snapshot", with_writes=True)
    locked = _run(sf3_dataset, isolation="read-committed", with_writes=True)

    ratio = (
        snapshot["read_throughput_per_s"]
        / read_only["read_throughput_per_s"]
    )
    _RESULTS["reader_throughput_under_write_mix"] = {
        "system": SYSTEM,
        "readers": READERS,
        "duration_ms": DURATION_MS,
        "read_only": read_only,
        "snapshot_with_writes": snapshot,
        "read_committed_with_writes": locked,
        "snapshot_vs_read_only_ratio": round(ratio, 3),
        "throughput_floor": THROUGHPUT_FLOOR,
    }

    # writers really ran, and snapshot readers never waited on them
    assert snapshot["updates_applied"] > 0
    assert snapshot["reader_lock_waits"] == 0
    assert snapshot["reader_lock_wait_ms"] == 0.0
    assert ratio >= THROUGHPUT_FLOOR, (
        f"snapshot readers under a write mix reached only {ratio:.2f}x "
        f"the read-only ceiling (floor {THROUGHPUT_FLOOR:g}x)"
    )
    # the fallback level shows the latch the snapshots removed
    assert locked["reader_lock_waits"] > 0
    assert locked["reads"] < snapshot["reads"]


def test_write_report():
    """Runs last: persist the artifact the CI perf-smoke job uploads."""
    assert _RESULTS, "mvcc benches did not run"
    report = {
        "bench": "mvcc",
        "scale_factor": 3,
        "scale_divisor": SCALE_DIVISOR,
        "results": _RESULTS,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(banner("MVCC snapshot reads: writers never block readers"))
    for name, row in _RESULTS.items():
        print(f"{name}: {json.dumps(row)}")
