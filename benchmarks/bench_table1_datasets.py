"""Table 1 — dataset statistics and database sizes.

Paper columns: #vertices, #edges, raw file size, and the loaded database
size in each system.  Paper shape: Virtuoso-RDBMS is the most compact
(columnar + dictionary encoding), Neo4j and Titan-B among the largest.
"""

from repro.core import SUT_KEYS, dataset_statistics
from repro.core.report import render_table

from conftest import banner


def _mb(size_bytes: float) -> float:
    return size_bytes / 1e6


def test_table1_dataset_statistics(
    benchmark, sf3_dataset, sf10_dataset, sf3_connectors, sf10_connectors
):
    def build():
        rows = []
        for name, dataset, connectors in (
            ("SNB scale factor 3", sf3_dataset, sf3_connectors),
            ("SNB scale factor 10", sf10_dataset, sf10_connectors),
        ):
            stats = dataset_statistics(dataset)
            row = [
                name,
                stats["vertices"],
                stats["edges"],
                round(_mb(stats["raw_bytes"]), 2),
            ]
            row.extend(
                round(_mb(connectors[key].size_bytes()), 2)
                for key in SUT_KEYS
            )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    headers = ["Dataset", "#vertices", "#edges", "raw MB"] + [
        f"{key} MB" for key in SUT_KEYS
    ]
    print(banner("Table 1: dataset statistics and database sizes"))
    print(render_table("", headers, rows))

    sizes_sf3 = {key: rows[0][4 + i] for i, key in enumerate(SUT_KEYS)}
    # paper shape: the columnar RDBMS is the most compact store
    assert sizes_sf3["virtuoso-sql"] <= min(
        sizes_sf3["neo4j-cypher"], sizes_sf3["titan-b"], sizes_sf3["sqlg"]
    )
    # SF10 is roughly 3.4x SF3 (34M/10M vertices in the paper)
    assert 2.0 < rows[1][1] / rows[0][1] < 6.0
