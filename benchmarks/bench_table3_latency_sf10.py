"""Table 3 — read-only query latencies on the scale factor 10 dataset.

Same queries as Table 2, larger graph.  Additional paper shape:

* Neo4j (Cypher) is nearly scale-insensitive — index-free adjacency makes
  traversal latency depend on the neighbourhood, not the dataset size —
  while the relational engines grow with the data;
* Sqlg cannot complete the shortest-path query in reasonable time at
  SF10 (the paper's '-' entry), enforced here by the Gremlin Server's
  evaluation timeout.
"""

import math

from repro.core import SUT_KEYS
from repro.core.benchmark import MICRO_QUERIES
from repro.core.report import render_table

from conftest import banner

from bench_table2_latency_sf3 import run_suite


def test_table3_latency_sf10(
    benchmark, sf3_dataset, sf3_connectors, sf10_dataset, sf10_connectors
):
    results10 = benchmark.pedantic(
        run_suite,
        args=(sf10_dataset, sf10_connectors),
        iterations=1,
        rounds=1,
    )
    results3 = run_suite(sf3_dataset, sf3_connectors)

    rows = [
        [key] + [results10[key][q] for q in MICRO_QUERIES]
        for key in SUT_KEYS
    ]
    print(banner("Table 3: query latencies in ms - scale factor 10"))
    print(
        render_table(
            "",
            ["System", "Point lookup", "1-hop", "2-hop", "Shortest path"],
            rows,
        )
    )

    # Neo4j/Cypher point lookups are scale-insensitive (paper: 9.1->11.2ms)
    growth = (
        results10["neo4j-cypher"]["point_lookup"]
        / results3["neo4j-cypher"]["point_lookup"]
    )
    assert growth < 1.8, f"Neo4j lookup grew {growth:.2f}x"
    # the SQL engines keep winning lookups at SF10
    assert results10["postgres-sql"]["point_lookup"] == min(
        r["point_lookup"] for r in results10.values()
    )
    # Sqlg shortest path: DNF (NaN), while the Titan variants complete
    assert math.isnan(results10["sqlg"]["shortest_path"])
    assert not math.isnan(results10["titan-c"]["shortest_path"])
    assert not math.isnan(results10["neo4j-gremlin"]["shortest_path"])
