"""Hot-path cache smoke bench: cold vs. warm reads, batched writes.

Three measurements, all on the SF3 snapshot:

* **Cold vs. warm two-hop reads.**  The store-level friends-of-friends
  mix (the paper's dominant read pattern) against the adjacency cache,
  and the same mix end-to-end through Gremlin Server with the script
  cache on — the first request pays parse/compile and the chain walks,
  the repeats are served from cache.  Warm must be at least 5x faster.
* **Batched vs. per-event writes.**  The Figure 3 harness with
  ``write_batch_size=32`` (one group-committed transaction, one WAL
  fsync, one client round-trip per batch) against the paper's per-event
  writer.  Batched throughput must be at least 2x.
* **Hit rates under the update stream.**  The interactive workload with
  caching enabled: the update stream invalidates cached neighborhoods
  while readers keep hitting — both counters must be nonzero, answers
  must match an uncached twin.

Results land in ``BENCH_cache.json`` at the repo root (the CI
perf-smoke artifact).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import SUT_KEYS, make_connector
from repro.driver import InteractiveConfig, InteractiveWorkloadRunner
from repro.simclock import CostModel, meter

from conftest import SCALE_DIVISOR, banner

MODEL = CostModel()
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_cache.json"
REPS = 5

_RESULTS: dict[str, dict] = {}


def _cost_ms(run) -> float:
    with meter() as ledger:
        run()
    return ledger.cost_us(MODEL) / 1000.0


def _warm_ms(run) -> float:
    """Median cost over REPS repeats (the first, cold call excluded)."""
    costs = sorted(_cost_ms(run) for _ in range(REPS))
    return costs[len(costs) // 2]


def _record_read(name: str, cold_ms: float, warm_ms: float) -> None:
    _RESULTS[name] = {
        "cold_ms": round(cold_ms, 4),
        "warm_ms": round(warm_ms, 4),
        "speedup": round(cold_ms / warm_ms, 1),
    }


# -- cold vs. warm two-hop reads ---------------------------------------------


def test_store_two_hop_cold_vs_warm(sf3_dataset):
    """friends_of_friends against the store's adjacency cache."""
    connector = make_connector("neo4j-cypher")
    connector.load(sf3_dataset)
    connector.enable_caching()
    store = connector.db.store
    pids = [store.lookup("Person", "id", p.id)[0]
            for p in sf3_dataset.persons[:8]]

    cold_ms = sum(
        _cost_ms(lambda n=nid: store.friends_of_friends(n, "KNOWS"))
        for nid in pids
    )
    warm_ms = sum(
        _warm_ms(lambda n=nid: store.friends_of_friends(n, "KNOWS"))
        for nid in pids
    )
    _record_read("store_two_hop_mix", cold_ms, warm_ms)
    assert cold_ms >= 5.0 * warm_ms


def test_gremlin_two_hop_cold_vs_warm(sf3_dataset):
    """The same mix end-to-end through Gremlin Server's script cache.

    All eight lookups share one parameterized script, so the mix pays
    compilation exactly once cold and never warm; evaluation always
    runs.  Asserted on the absolute compile saving (~11 ms), not a
    ratio — traversal evaluation dominates both sides.
    """
    connector = make_connector("neo4j-gremlin")
    connector.load(sf3_dataset)
    connector.set_execution_mode("interpreted")  # measure the script cache
    connector.enable_caching()
    pids = [p.id for p in sf3_dataset.persons[:8]]

    cold_ms = sum(
        _cost_ms(lambda p=pid: connector.two_hop(p)) for pid in pids
    )
    warm_ms = sum(
        _warm_ms(lambda p=pid: connector.two_hop(p)) for pid in pids
    )
    _record_read("gremlin_two_hop_end_to_end", cold_ms, warm_ms)
    assert cold_ms - warm_ms >= 10.0  # the skipped gremlin_compile


def test_cypher_two_hop_cold_vs_warm(sf3_dataset):
    """Engine-level: plan cache + adjacency cache (reported, unasserted
    on a fixed ratio — cypher_exec dominates both sides)."""
    connector = make_connector("neo4j-cypher")
    connector.load(sf3_dataset)
    connector.enable_caching()
    pids = [p.id for p in sf3_dataset.persons[:8]]

    cold_ms = sum(
        _cost_ms(lambda p=pid: connector.two_hop(p)) for pid in pids
    )
    warm_ms = sum(
        _warm_ms(lambda p=pid: connector.two_hop(p)) for pid in pids
    )
    _record_read("cypher_two_hop_end_to_end", cold_ms, warm_ms)
    assert warm_ms < cold_ms


# -- batched write pipeline ---------------------------------------------------


def _interactive(dataset, batch_size: int, *, cached: bool = False,
                 key: str = "postgres-sql"):
    connector = make_connector(key)
    connector.load(dataset)
    if cached:
        connector.enable_caching()
    config = InteractiveConfig(
        readers=4,
        cores=8,
        duration_ms=1_000.0,
        write_batch_size=batch_size,
    )
    result = InteractiveWorkloadRunner(connector, dataset, config).run()
    return connector, result


def test_batched_writer_throughput(sf3_dataset):
    _, per_event = _interactive(sf3_dataset, batch_size=1)
    _, batched = _interactive(sf3_dataset, batch_size=32)
    assert per_event.read_failures == 0 and batched.read_failures == 0
    _RESULTS["sql_write_pipeline"] = {
        "per_event_writes_per_s": round(per_event.write_throughput),
        "batched_writes_per_s": round(batched.write_throughput),
        "batch_size": 32,
        "speedup": round(
            batched.write_throughput / per_event.write_throughput, 2
        ),
        "per_event_p99_ms": round(
            per_event.write_latency.percentile(99), 3
        ),
        "batched_p99_ms": round(batched.write_latency.percentile(99), 3),
    }
    assert batched.write_throughput >= 2.0 * per_event.write_throughput


# -- hit rates under the update stream ---------------------------------------


def test_hit_rates_under_update_stream(sf3_dataset):
    connector, result = _interactive(
        sf3_dataset, batch_size=16, cached=True, key="neo4j-cypher"
    )
    assert result.updates_applied > 0
    rows = {s.name: s for s in connector.cache_stats()}
    _RESULTS["cache_hit_rates_under_updates"] = {
        name: {
            "hit_rate": round(s.hit_rate, 3),
            "hits": s.hits,
            "misses": s.misses,
            "invalidations": s.invalidations,
        }
        for name, s in rows.items()
    }
    neighborhood = next(
        s for name, s in rows.items() if "neighborhood" in name
    )
    assert neighborhood.hits > 0
    assert neighborhood.invalidations > 0  # the stream evicted entries


def test_plan_invalidation_under_updates_and_analyze(sf3_dataset):
    """The BENCH_cache blind spot: an update batch followed by the
    maintenance ANALYZE must evict cached Cypher plans *and* compiled
    closures (counted as invalidations), and warm reads must re-converge
    to the same answers afterwards."""
    connector = make_connector("neo4j-cypher")
    connector.load(sf3_dataset)
    connector.enable_caching()
    pids = [p.id for p in sf3_dataset.persons[:8]]

    answers_before = {pid: connector.two_hop(pid) for pid in pids}
    warm_before_ms = sum(
        _warm_ms(lambda p=pid: connector.two_hop(p)) for pid in pids
    )
    before = {s.name: s.invalidations for s in connector.cache_stats()}

    connector.apply_update_batch(sf3_dataset.updates[:50])
    connector.db.analyze()

    after = {s.name: s.invalidations for s in connector.cache_stats()}
    cold_after_ms = sum(
        _cost_ms(lambda p=pid: connector.two_hop(p)) for pid in pids
    )
    warm_after_ms = sum(
        _warm_ms(lambda p=pid: connector.two_hop(p)) for pid in pids
    )
    _RESULTS["plan_invalidation_under_updates"] = {
        "warm_before_ms": round(warm_before_ms, 4),
        "cold_after_analyze_ms": round(cold_after_ms, 4),
        "warm_after_ms": round(warm_after_ms, 4),
        "plan_invalidations": after["cypher-plans"] - before["cypher-plans"],
        "closure_invalidations": (
            after["cypher-closures"] - before["cypher-closures"]
        ),
    }
    assert after["cypher-plans"] > before["cypher-plans"]
    assert after["cypher-closures"] > before["cypher-closures"]
    # answers survive the invalidation (updates only add new entities)
    for pid in pids:
        assert set(answers_before[pid]) <= set(connector.two_hop(pid))
    # the re-plan/re-compile happened once; repeats are warm again
    assert warm_after_ms < cold_after_ms


# -- cross-system validation with caching on ---------------------------------


def test_validate_cached_no_mismatches(sf3_dataset):
    """`repro validate --cached` semantics: answers stay identical."""
    from repro.core.benchmark import WorkloadParams

    connectors = {}
    for key in SUT_KEYS:
        connector = make_connector(key)
        connector.load(sf3_dataset)
        connector.enable_caching()
        connectors[key] = connector
    params = WorkloadParams.curate(sf3_dataset, count=3, seed=7)
    mismatches = 0
    checks = 0

    def normalize(value):
        if isinstance(value, list):
            return [
                tuple(v) if isinstance(v, (list, tuple)) else v
                for v in value
            ]
        return value

    for op, idents in (
        ("point_lookup", params.person_ids),
        ("one_hop", params.person_ids),
        ("two_hop", params.person_ids),
        ("message_content", params.message_ids),
    ):
        for ident in idents:
            answers = {
                key: normalize(getattr(c, op)(ident))
                for key, c in connectors.items()
            }
            reference = answers["postgres-sql"]
            for answer in answers.values():
                checks += 1
                if answer != reference:
                    mismatches += 1
    _RESULTS["validate_cached"] = {
        "systems": len(connectors),
        "checks": checks,
        "mismatches": mismatches,
    }
    assert mismatches == 0


def test_write_report():
    """Runs last: persist the artifact the CI perf-smoke job uploads."""
    assert _RESULTS, "cache benches did not run"
    report = {
        "bench": "cache",
        "scale_factor": 3,
        "scale_divisor": SCALE_DIVISOR,
        "repetitions": REPS,
        "results": _RESULTS,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(banner("Hot-path caches: cold vs. warm reads, batched writes"))
    for name, row in _RESULTS.items():
        print(f"{name}: {json.dumps(row)}")
