"""Shared state for the paper-reproduction benches.

Heavy artifacts (datasets, loaded connectors) are built once per session.
``REPRO_SCALE_DIVISOR`` (default 1000) controls how far below paper scale
the datasets sit; every printed table restates it.  ``REPRO_REPS``
(default 20) sets repetitions for the latency suites (the paper used 100;
20 keeps the slowest Gremlin shortest-path runs tractable by default).
"""

from __future__ import annotations

import os

import pytest

from repro.core import SUT_KEYS, make_connector
from repro.snb import GeneratorConfig, generate

SCALE_DIVISOR = float(os.environ.get("REPRO_SCALE_DIVISOR", "1000"))
REPETITIONS = int(os.environ.get("REPRO_REPS", "20"))

#: (scale_factor, divisor, seed) -> generated dataset.  Generation is
#: deterministic, so identical parameters always yield the same snapshot;
#: benches that want their own scale no longer pay for a regeneration.
_DATASET_CACHE: dict[tuple[float, float, int], object] = {}


def dataset_for(
    scale_factor: float, *, divisor: float = SCALE_DIVISOR, seed: int = 42
):
    """The (cached) SNB snapshot for one (scale, divisor, seed) triple."""
    key = (float(scale_factor), float(divisor), seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate(GeneratorConfig(
            scale_factor=scale_factor, scale_divisor=divisor, seed=seed,
        ))
    return _DATASET_CACHE[key]


def banner(title: str) -> str:
    return (
        f"\n{'=' * 72}\n{title}\n"
        f"(scale divisor {SCALE_DIVISOR:g}; simulated time; "
        f"{REPETITIONS} repetitions)\n{'=' * 72}"
    )


@pytest.fixture(scope="session")
def sf3_dataset():
    return dataset_for(3)


@pytest.fixture(scope="session")
def sf10_dataset():
    return dataset_for(10)


def _load_all(dataset) -> dict:
    """Every system loaded with one snapshot, pinned to interpreted
    execution: the paper's 2015-era systems ran classic tuple-at-a-time
    interpreters, so the figure/table benches must keep reproducing
    those shapes.  ``bench_compiled`` opts into compiled mode itself.
    """
    loaded = {}
    for key in SUT_KEYS:
        connector = make_connector(key)
        connector.load(dataset)
        connector.set_execution_mode("interpreted")
        loaded[key] = connector
    return loaded


@pytest.fixture(scope="session")
def sf3_connectors(sf3_dataset):
    """Every system loaded with the SF3 snapshot."""
    return _load_all(sf3_dataset)


@pytest.fixture(scope="session")
def sf10_connectors(sf10_dataset):
    return _load_all(sf10_dataset)
