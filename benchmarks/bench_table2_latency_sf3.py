"""Table 2 — read-only query latencies on the scale factor 3 dataset.

Query types: point lookup, 1-hop, 2-hop, single-pair shortest path.
Paper shape asserted below:

* Postgres (SQL) fastest point lookups and 1-hop traversals;
* Virtuoso (SQL) fastest 2-hop traversals;
* Neo4j (Cypher) far ahead of the relational engines on shortest path;
* every Gremlin/TinkerPop combination at least an order of magnitude
  behind its native-interface counterpart.
"""

from repro.core import SUT_KEYS
from repro.core.benchmark import MICRO_QUERIES, LatencyBenchmark
from repro.core.report import render_table

from conftest import REPETITIONS, banner


def run_suite(dataset, connectors):
    bench = LatencyBenchmark(dataset, repetitions=REPETITIONS)
    return {key: bench.run(connectors[key]) for key in SUT_KEYS}


def check_table2_shape(results):
    lookup = {k: r["point_lookup"] for k, r in results.items()}
    one = {k: r["one_hop"] for k, r in results.items()}
    two = {k: r["two_hop"] for k, r in results.items()}
    sp = {k: r["shortest_path"] for k, r in results.items()}

    assert lookup["postgres-sql"] == min(lookup.values())
    assert one["postgres-sql"] == min(one.values())
    assert two["virtuoso-sql"] == min(v for v in two.values() if v == v)
    # Neo4j's bidirectional shortestPath beats both relational engines
    assert sp["neo4j-cypher"] < sp["virtuoso-sql"] < sp["postgres-sql"]
    # the TinkerPop overhead: >= 10x on point lookups vs native interfaces
    assert lookup["neo4j-gremlin"] > 5 * lookup["neo4j-cypher"]
    assert lookup["sqlg"] > 10 * lookup["postgres-sql"]
    for key in ("neo4j-gremlin", "titan-c", "titan-b", "sqlg"):
        assert lookup[key] > 10 * lookup["virtuoso-sql"], key


def test_table2_latency_sf3(benchmark, sf3_dataset, sf3_connectors):
    results = benchmark.pedantic(
        run_suite, args=(sf3_dataset, sf3_connectors), iterations=1, rounds=1
    )
    rows = [
        [key] + [results[key][q] for q in MICRO_QUERIES] for key in SUT_KEYS
    ]
    print(banner("Table 2: query latencies in ms - scale factor 3"))
    print(
        render_table(
            "",
            ["System", "Point lookup", "1-hop", "2-hop", "Shortest path"],
            rows,
        )
    )
    assert all(
        r["point_lookup"] == r["point_lookup"] for r in results.values()
    ), "no system should DNF a point lookup"
    check_table2_shape(results)
