"""Optimizer smoke bench: cost-based ordering vs. textual order.

Two designed worst cases, both 2-hop friend-of-friend lookups written in
the most hostile textual order:

* SQL — the FROM clause lists the join chain *reversed* (``knows k2``
  first, the selective ``person.id`` filter last), so textual-order
  planning hash-joins the two big ``knows`` tables before the point
  filter ever applies.  Greedy reordering starts from the indexed
  ``person`` lookup instead.
* SPARQL — the triple patterns lead with the fully *unbound*
  ``?f snb:knows ?fof``, which textual execution scans in full; the
  statistics-based order starts from the single-subject ``snb:id``
  anchor.

Both variants must return identical answers; the optimized plans must be
at least 2x faster in simulated time.  Results land in
``BENCH_optimizer.json`` at the repo root (the CI perf-smoke artifact).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import make_connector
from repro.simclock import CostModel, meter

from conftest import SCALE_DIVISOR, banner

MODEL = CostModel()
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_optimizer.json"
REPS = 5

#: worst-case SQL: join chain written backwards, anchor filter last
SQL_REVERSED = (
    "SELECT DISTINCT k2.p2 FROM knows k2 "
    "JOIN knows k1 ON k2.p1 = k1.p2 "
    "JOIN person p ON k1.p1 = p.id "
    "WHERE p.id = {pid}"
)

#: worst-case SPARQL: the unbound 2-hop pattern leads, the anchor trails
SPARQL_UNBOUND_FIRST = (
    "SELECT DISTINCT ?fofid WHERE { "
    "?f snb:knows ?fof . ?fof snb:id ?fofid . "
    "?p snb:knows ?f . ?p snb:id $id . ?p rdf:type snb:Person } "
    "ORDER BY ?fofid"
)


@pytest.fixture(scope="module")
def sql_db(sf10_dataset):
    connector = make_connector("postgres-sql")
    connector.load(sf10_dataset)  # load() runs ANALYZE
    return connector.db


@pytest.fixture(scope="module")
def sparql_db(sf10_dataset):
    connector = make_connector("virtuoso-sparql")
    connector.load(sf10_dataset)
    return connector.db


def _measure(run) -> float:
    """Median simulated latency (ms) of ``run`` over REPS repetitions."""
    costs = []
    for _ in range(REPS):
        with meter() as ledger:
            run()
        costs.append(ledger.cost_us(MODEL) / 1000.0)
    return sorted(costs)[len(costs) // 2]


def _record(results: dict, name: str, textual_ms: float,
            optimized_ms: float) -> None:
    results[name] = {
        "textual_ms": round(textual_ms, 3),
        "optimized_ms": round(optimized_ms, 3),
        "speedup": round(textual_ms / optimized_ms, 2),
    }


_RESULTS: dict[str, dict] = {}


def test_sql_two_hop_reversed_from(sf10_dataset, sql_db):
    pid = sf10_dataset.persons[0].id
    sql = SQL_REVERSED.format(pid=pid)

    optimized_rows = sql_db.query(sql)
    optimized_ms = _measure(lambda: sql_db.query(sql))
    sql_db.set_join_reordering(False)
    try:
        textual_rows = sql_db.query(sql)
        textual_ms = _measure(lambda: sql_db.query(sql))
    finally:
        sql_db.set_join_reordering(True)

    assert sorted(optimized_rows) == sorted(textual_rows)
    _record(_RESULTS, "sql_two_hop_reversed_from", textual_ms, optimized_ms)
    assert textual_ms >= 2.0 * optimized_ms


def test_sparql_two_hop_unbound_first(sf10_dataset, sparql_db):
    params = {"id": sf10_dataset.persons[0].id}

    optimized_rows = sparql_db.execute(SPARQL_UNBOUND_FIRST, params)
    optimized_ms = _measure(
        lambda: sparql_db.execute(SPARQL_UNBOUND_FIRST, params)
    )
    sparql_db.executor.order_mode = "textual"
    try:
        textual_rows = sparql_db.execute(SPARQL_UNBOUND_FIRST, params)
        textual_ms = _measure(
            lambda: sparql_db.execute(SPARQL_UNBOUND_FIRST, params)
        )
    finally:
        sparql_db.executor.order_mode = "stats"

    assert optimized_rows == textual_rows
    _record(
        _RESULTS, "sparql_two_hop_unbound_first", textual_ms, optimized_ms
    )
    assert textual_ms >= 2.0 * optimized_ms


def test_write_report():
    """Runs last: persist the artifact the CI perf-smoke job uploads."""
    assert _RESULTS, "ordering benches did not run"
    report = {
        "bench": "optimizer",
        "scale_factor": 10,
        "scale_divisor": SCALE_DIVISOR,
        "repetitions": REPS,
        "results": _RESULTS,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(banner("Optimizer smoke: cost-based order vs. textual order"))
    for name, row in _RESULTS.items():
        print(
            f"{name}: textual {row['textual_ms']:.2f} ms -> "
            f"optimized {row['optimized_ms']:.2f} ms "
            f"({row['speedup']:.1f}x)"
        )
