"""Ablations for the design choices DESIGN.md calls out.

These are not in the paper's tables; they isolate each mechanism the
analysis credits for the headline results.

1. Index-free adjacency vs edge-table joins (graph store wins traversal
   depth, loses point access to the indexed RDBMS).
2. Gremlin Server round trips: the same traversal embedded vs
   server-mediated.
3. Row vs columnar storage under an update-heavy workload.
4. RDF multi-index maintenance vs the relational schema (write
   amplification).
5. Titan's locking-for-uniqueness on the non-transactional backend.
6. The original (full) query mix crashes the Gremlin Server under many
   concurrent clients — the reason Section 4.3 uses the reduced mix.
"""

from repro.core import make_connector
from repro.core.benchmark import LatencyBenchmark
from repro.core.report import render_table
from repro.driver import InteractiveConfig, InteractiveWorkloadRunner
from repro.driver.workload import FULL_MIX
from repro.simclock import CostModel, meter
from repro.tinkerpop import Graph

from conftest import REPETITIONS, banner

MODEL = CostModel()


def test_ablation_index_free_adjacency(benchmark, sf3_dataset, sf3_connectors):
    """Neo4j's traversal latency is flat in dataset size; Postgres pays
    joins — but the indexed RDBMS wins the anchored lookups."""

    def run():
        bench = LatencyBenchmark(sf3_dataset, repetitions=REPETITIONS)
        return {
            key: bench.run(sf3_connectors[key])
            for key in ("neo4j-cypher", "postgres-sql")
        }

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print(banner("Ablation 1: index-free adjacency vs edge-table joins"))
    print(
        render_table(
            "",
            ["System", "lookup", "1-hop", "2-hop", "shortest path"],
            [
                [k, r["point_lookup"], r["one_hop"], r["two_hop"],
                 r["shortest_path"]]
                for k, r in results.items()
            ],
        )
    )
    assert (
        results["postgres-sql"]["point_lookup"]
        < results["neo4j-cypher"]["point_lookup"]
    )
    assert (
        results["neo4j-cypher"]["shortest_path"]
        < results["postgres-sql"]["shortest_path"]
    )


def test_ablation_gremlin_server_overhead(benchmark, sf3_dataset):
    """Embedded traversal vs the same traversal through the server."""
    connector = make_connector("neo4j-gremlin")
    connector.load(sf3_dataset)
    connector.set_execution_mode("interpreted")  # paper-era server
    person_id = sf3_dataset.persons[0].id

    def run():
        with meter() as embedded:
            Graph(connector.provider).traversal().V().has(
                "person", "id", person_id
            ).both("knows").values("id").toList()
        with meter() as served:
            connector.server.submit(
                lambda g: g.V().has("person", "id", person_id)
                .both("knows").values("id")
            )
        return embedded.cost_us(MODEL), served.cost_us(MODEL)

    embedded_us, served_us = benchmark.pedantic(run, iterations=1, rounds=1)
    print(banner("Ablation 2: Gremlin Server round-trip overhead"))
    print(
        render_table(
            "",
            ["Path", "latency ms"],
            [
                ["embedded traversal", embedded_us / 1000],
                ["via Gremlin Server", served_us / 1000],
            ],
        )
    )
    assert served_us > 20 * embedded_us


def test_ablation_row_vs_column_updates(benchmark, sf3_dataset):
    """The same update stream against row and columnar storage."""

    def run():
        costs = {}
        for key in ("postgres-sql", "virtuoso-sql"):
            connector = make_connector(key)
            connector.load(sf3_dataset)
            with meter() as ledger:
                for event in sf3_dataset.updates[:300]:
                    connector.apply_update(event)
            costs[key] = ledger.cost_us(MODEL) / 1000
        return costs

    costs = benchmark.pedantic(run, iterations=1, rounds=1)
    print(banner("Ablation 3: row vs columnar storage, 300 updates"))
    print(
        render_table(
            "", ["System", "total ms"], [[k, v] for k, v in costs.items()]
        )
    )
    assert costs["virtuoso-sql"] > 1.2 * costs["postgres-sql"]


def test_ablation_rdf_write_amplification(benchmark, sf3_dataset):
    """Triples + three covering indexes vs relational tables."""

    def run():
        costs = {}
        for key in ("virtuoso-sql", "virtuoso-sparql"):
            connector = make_connector(key)
            connector.load(sf3_dataset)
            with meter() as ledger:
                for event in sf3_dataset.updates[:300]:
                    connector.apply_update(event)
            costs[key] = ledger.cost_us(MODEL) / 1000
        return costs

    costs = benchmark.pedantic(run, iterations=1, rounds=1)
    print(banner("Ablation 4: RDF multi-index write amplification"))
    print(
        render_table(
            "", ["System", "total ms"], [[k, v] for k, v in costs.items()]
        )
    )
    assert costs["virtuoso-sparql"] > 1.5 * costs["virtuoso-sql"]


def test_ablation_titan_locking(benchmark, sf3_dataset):
    """Uniqueness locking on Cassandra: lock round trips per new vertex."""

    def run():
        connector = make_connector("titan-c")
        connector.load(sf3_dataset)
        person = next(
            e.payload
            for e in sf3_dataset.updates
            if type(e.payload).__name__ == "Person"
        )
        with meter() as ledger:
            connector.add_person(person)
        return ledger.counters.get("lock_rtt", 0), ledger.cost_us(MODEL)

    lock_rtts, _cost = benchmark.pedantic(run, iterations=1, rounds=1)
    print(banner("Ablation 5: Titan-C uniqueness locking"))
    print(f"lock round trips for one AddPerson: {lock_rtts:g}")
    assert lock_rtts >= 1


def test_ablation_full_mix_crashes_gremlin_server(benchmark, sf3_dataset):
    """Section 4.4: the original LDBC mix (with long-running complex
    queries) makes the Gremlin Server hang and crash under 64 concurrent
    clients; that's why the paper's Figure 3 uses the reduced mix."""

    def run():
        connector = make_connector("titan-c")
        connector.load(sf3_dataset)
        connector.set_execution_mode("interpreted")  # paper-era server
        connector.server.queue_limit = 24
        config = InteractiveConfig(
            readers=64,
            duration_ms=2_000.0,
            window_ms=200.0,
            mix=FULL_MIX,
        )
        return InteractiveWorkloadRunner(
            connector, sf3_dataset, config
        ).run()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    print(banner("Ablation 6: full LDBC mix vs the Gremlin Server"))
    print(
        f"server crashed: {result.server_crashed}; "
        f"failed reads: {result.read_failures}"
    )
    assert result.server_crashed
    assert result.read_failures > 0
