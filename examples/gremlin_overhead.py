"""Figure 2 in action: the cost of the Gremlin Server layer.

The same one-hop traversal is executed (a) embedded against the provider
and (b) submitted to the Gremlin Server, for every TinkerPop backend.
The server pays request round trips, traversal compilation, and
per-element GraphSON serialization — the overhead behind the paper's
conclusion that TinkerPop3 "incurs significant overhead".

Run:  python examples/gremlin_overhead.py
"""

from repro.core import make_connector
from repro.core.benchmark import WorkloadParams
from repro.core.report import render_table
from repro.simclock import CostModel, meter
from repro.snb import GeneratorConfig, generate
from repro.tinkerpop import Graph

GREMLIN_SYSTEMS = ["neo4j-gremlin", "titan-c", "titan-b", "sqlg"]


def main() -> None:
    dataset = generate(GeneratorConfig(scale_factor=3, scale_divisor=4000))
    person = WorkloadParams.curate(dataset, seed=1).person_ids[0]
    model = CostModel()
    rows = []
    for key in GREMLIN_SYSTEMS:
        connector = make_connector(key)
        connector.load(dataset)

        def traverse(g):
            return g.V().has("person", "id", person).both("knows").values("id")

        with meter() as embedded:
            traverse(Graph(connector.provider).traversal()).toList()
        with meter() as served:
            connector.server.submit(traverse)
        embedded_ms = embedded.cost_us(model) / 1000
        served_ms = served.cost_us(model) / 1000
        rows.append(
            [key, round(embedded_ms, 3), round(served_ms, 3),
             round(served_ms / embedded_ms, 1)]
        )
    print(
        render_table(
            "One-hop traversal: embedded vs Gremlin Server (simulated ms)",
            ["Backend", "embedded", "via server", "overhead x"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
