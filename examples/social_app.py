"""A small social application built directly on the native graph engine.

Shows the graph database as a downstream user would adopt it: Cypher for
application queries, index-backed lookups, friend recommendations via the
2-hop neighbourhood, and degrees-of-separation via shortestPath.

Run:  python examples/social_app.py
"""

from repro.graphdb import GraphDatabase


def main() -> None:
    db = GraphDatabase("social-app")
    db.create_index("User", "handle")
    db.create_index("Post", "id")

    # -- sign-ups -------------------------------------------------------
    users = {
        "ada": "Ada Lovelace",
        "alan": "Alan Turing",
        "grace": "Grace Hopper",
        "edsger": "Edsger Dijkstra",
        "barbara": "Barbara Liskov",
        "donald": "Donald Knuth",
    }
    for handle, name in users.items():
        db.execute(
            "CREATE (u:User {handle: $h, name: $n})",
            {"h": handle, "n": name},
        )

    # -- follows ---------------------------------------------------------
    follows = [
        ("ada", "alan"), ("alan", "grace"), ("grace", "barbara"),
        ("barbara", "donald"), ("ada", "edsger"), ("edsger", "grace"),
    ]
    for a, b in follows:
        db.execute(
            "MATCH (a:User {handle: $a}), (b:User {handle: $b}) "
            "CREATE (a)-[:FOLLOWS]->(b)",
            {"a": a, "b": b},
        )

    # -- posting ----------------------------------------------------------
    posts = [
        (1, "grace", "Compilers are just translators with opinions."),
        (2, "alan", "Can machines think?"),
        (3, "barbara", "Abstraction is the key to managing complexity."),
    ]
    for pid, author, text in posts:
        db.execute(
            "MATCH (u:User {handle: $h}) "
            "CREATE (p:Post {id: $id, text: $t})-[:AUTHORED]->(u)",
            {"h": author, "id": pid, "t": text},
        )

    # -- timeline: posts by people ada follows ---------------------------------
    timeline = db.execute(
        "MATCH (me:User {handle: $h})-[:FOLLOWS]->(u:User)"
        "<-[:AUTHORED]-(p:Post) RETURN u.name AS author, p.text AS text "
        "ORDER BY author",
        {"h": "ada"},
    )
    print("ada's timeline:")
    for author, text in timeline:
        print(f"  {author}: {text}")

    # -- who to follow: friends-of-friends ada doesn't follow yet -------------
    suggestions = db.execute(
        "MATCH (me:User {handle: $h})-[:FOLLOWS]->(:User)-[:FOLLOWS]->"
        "(s:User) WHERE s.handle <> $h "
        "RETURN DISTINCT s.name AS name ORDER BY name",
        {"h": "ada"},
    )
    print("\nsuggested follows for ada:")
    for (name,) in suggestions:
        print(f"  {name}")

    # -- degrees of separation ----------------------------------------------------
    rows = db.execute(
        "MATCH p = shortestPath((a:User {handle: $a})-[:FOLLOWS*]-"
        "(b:User {handle: $b})) RETURN length(p)",
        {"a": "ada", "b": "donald"},
    )
    print(f"\nada and donald are {rows[0][0]} hops apart")

    # -- engagement stats -------------------------------------------------------------
    stats = db.execute(
        "MATCH (p:Post)-[:AUTHORED]->(u:User) "
        "RETURN u.name AS name, count(*) AS posts ORDER BY posts DESC, name"
    )
    print("\nposts per user:")
    for name, count in stats:
        print(f"  {name}: {count}")


if __name__ == "__main__":
    main()
