"""The paper's Figure 1 architecture, end to end.

Update operations flow through a Kafka topic; a dedicated writer consumes
and applies them to the system under test while concurrent readers run
the interactive mix.  Prints the resulting read/write throughput and the
write-rate time series (watch Neo4j's checkpoint dips).

Run:  python examples/realtime_feed.py [sut-key]
"""

import sys

from repro.core import SUT_KEYS, make_connector
from repro.core.report import render_series
from repro.driver import InteractiveConfig, InteractiveWorkloadRunner
from repro.snb import GeneratorConfig, generate


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "neo4j-cypher"
    if key not in SUT_KEYS:
        raise SystemExit(f"unknown SUT {key!r}; choose from {SUT_KEYS}")

    dataset = generate(GeneratorConfig(scale_factor=3, scale_divisor=4000))
    connector = make_connector(key)
    connector.load(dataset)
    print(
        f"Loaded {dataset.vertex_count():,} vertices into {key}; "
        f"{len(dataset.updates):,} updates queued in Kafka"
    )

    config = InteractiveConfig(
        readers=16,
        duration_ms=1_000.0,
        window_ms=50.0,
        checkpoint_interval_ms=250.0,
        checkpoint_stall_us_per_record=2_500.0,
    )
    result = InteractiveWorkloadRunner(connector, dataset, config).run()

    print(
        f"\n{config.readers} readers + 1 writer for "
        f"{config.duration_ms:.0f} ms simulated:"
    )
    print(f"  reads/s  : {result.read_throughput:,.0f}")
    print(f"  writes/s : {result.write_throughput:,.0f}")
    print(f"  updates applied: {result.updates_applied}")
    print(f"  mean read latency : {result.read_latency.mean():.3f} ms")
    print(f"  p99 read latency  : {result.read_latency.percentile(99):.3f} ms")
    print()
    print(
        render_series(
            f"write throughput over time ({key})",
            {key: result.write_windows.series()},
        )
    )


if __name__ == "__main__":
    main()
