"""Quickstart: generate a social network, load two systems, compare them.

Run:  python examples/quickstart.py
"""

from repro.core import make_connector
from repro.core.benchmark import WorkloadParams
from repro.simclock import CostModel, meter
from repro.snb import GeneratorConfig, generate


def main() -> None:
    # 1. Generate an LDBC SNB-style dataset (SF3 shrunk 4000x).
    config = GeneratorConfig(scale_factor=3, scale_divisor=4000, seed=7)
    dataset = generate(config)
    print(
        f"Generated SNB SF{config.scale_factor:g} / divisor "
        f"{config.scale_divisor:g}: {dataset.vertex_count():,} vertices, "
        f"{dataset.edge_count():,} edges, "
        f"{len(dataset.updates):,} update events"
    )

    # 2. Load the same snapshot into a relational engine and a native
    #    graph database.
    postgres = make_connector("postgres-sql")
    neo4j = make_connector("neo4j-cypher")
    postgres.load(dataset)
    neo4j.load(dataset)

    # 3. Ask both systems the same questions.
    params = WorkloadParams.curate(dataset, seed=1)
    person = params.person_ids[0]
    pair = params.path_pairs[0]
    model = CostModel()

    print(f"\nPerson {person}:")
    for connector in (postgres, neo4j):
        with meter() as ledger:
            profile = connector.point_lookup(person)
            friends = connector.one_hop(person)
            hops = connector.shortest_path(*pair)
        print(
            f"  [{connector.key:13s}] {profile[0]} {profile[1]} | "
            f"{len(friends)} friends | {pair[0]}->{pair[1]} in {hops} hops | "
            f"{ledger.cost_us(model) / 1000:.2f} ms simulated"
        )

    # 4. Apply the first updates of the real-time stream to both.
    for event in dataset.updates[:25]:
        postgres.apply_update(event)
        neo4j.apply_update(event)
    print(f"\nApplied {25} update-stream events to both systems.")
    print("Results stay consistent:",
          postgres.one_hop(person) == neo4j.one_hop(person))


if __name__ == "__main__":
    main()
