"""Mini Table 2: the four micro queries across all eight systems.

A faster, smaller version of ``benchmarks/bench_table2_latency_sf3.py``
meant for interactive exploration.

Run:  python examples/system_comparison.py [scale_divisor]
"""

import math
import sys

from repro.core import SUT_KEYS, make_connector
from repro.core.benchmark import MICRO_QUERIES, LatencyBenchmark
from repro.core.report import render_table
from repro.snb import GeneratorConfig, generate


def main() -> None:
    divisor = float(sys.argv[1]) if len(sys.argv) > 1 else 4000.0
    dataset = generate(GeneratorConfig(scale_factor=3, scale_divisor=divisor))
    print(
        f"SNB SF3 / divisor {divisor:g}: {dataset.vertex_count():,} "
        f"vertices, {dataset.edge_count():,} edges"
    )
    bench = LatencyBenchmark(dataset, repetitions=10)
    rows = []
    for key in SUT_KEYS:
        connector = make_connector(key)
        connector.load(dataset)
        results = bench.run(connector)
        rows.append(
            [key]
            + [
                None if math.isnan(results[q]) else round(results[q], 3)
                for q in MICRO_QUERIES
            ]
        )
    print(
        render_table(
            "Mean simulated latency (ms); '-' marks DNF",
            ["System", "point lookup", "1-hop", "2-hop", "shortest path"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
